"""SweepService unit tests: admission, caching, coalescing, shutdown."""

from __future__ import annotations

import threading
import time

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.serve import AdmissionError, BadRequest, JobRequest, SweepService
from repro.sweep import ResultCache

from .conftest import job_payload


def canned_task(stats, gate: threading.Event | None = None, wall: float = 0.01):
    """A task that (optionally) waits on ``gate`` then returns ``stats``."""

    def task(payload):
        index = payload[0]
        if gate is not None:
            assert gate.wait(30), "test gate never released"
        return index, stats, wall, None

    return task


class TestRequestParsing:
    def test_single_point_shorthand(self):
        request = JobRequest.from_payload(job_payload())
        assert len(request.points) == 1
        assert request.points[0].config.n_procs == 4
        assert request.points[0].workload.name == "hotspot"

    def test_multi_point_job(self):
        request = JobRequest.from_payload(
            {"label": "grid", "points": [job_payload(), job_payload(rounds=3)]}
        )
        assert request.label == "grid"
        assert len(request.points) == 2

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not a dict", "JSON object"),
            ({}, "'points' or a 'workload'"),
            ({"points": []}, "non-empty"),
            ({"workload": {"params": {}}}, "workload must be"),
            ({"workload": {"name": "linpack"}}, "unknown workload"),
            ({"workload": {"name": "hotspot", "params": {"bogus": 1}}}, "bogus"),
            (
                {"workload": {"name": "hotspot"}, "config": {"warp": 9}},
                "config",
            ),
            (
                {
                    "workload": {"name": "hotspot"},
                    "config": {"protocol": "mystery"},
                },
                "unknown protocol",
            ),
            ({**job_payload(), "timeout": -1}, "timeout"),
            ({**job_payload(), "timeout": "soon"}, "timeout"),
        ],
    )
    def test_bad_payloads_rejected(self, payload, match):
        with pytest.raises(BadRequest, match=match):
            JobRequest.from_payload(payload)


class TestAdmissionControl:
    def test_queue_full_rejection(self, small_stats, thread_executor_factory):
        gate = threading.Event()
        service = SweepService(
            workers=1,
            queue_depth=1,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats, gate),
        )
        try:
            first = service.submit_payload(job_payload())
            with pytest.raises(AdmissionError) as excinfo:
                service.submit_payload(job_payload(rounds=9))
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.status == 429
            assert service.metrics.get("jobs.rejected.queue_full") == 1
        finally:
            gate.set()
            assert first.wait(30)
            service.close()

    def test_point_budget_rejection(self, small_stats, thread_executor_factory):
        service = SweepService(
            workers=1,
            max_points=2,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        with pytest.raises(AdmissionError) as excinfo:
            service.submit_payload(
                {"points": [job_payload(rounds=r) for r in (1, 2, 3)]}
            )
        assert excinfo.value.code == "over_budget"
        assert excinfo.value.status == 413
        service.close()

    def test_cycle_budget_rejection(self, small_stats, thread_executor_factory):
        service = SweepService(
            workers=1,
            max_cycles=1_000_000,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        with pytest.raises(AdmissionError, match="budget"):
            service.submit_payload(job_payload(max_cycles=2_000_000))
        # A conforming job is admitted.
        record = service.submit_payload(job_payload(max_cycles=500_000))
        assert record.wait(30)
        service.close()

    def test_draining_service_rejects(self, small_stats, thread_executor_factory):
        service = SweepService(
            workers=1,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        service.begin_drain()
        with pytest.raises(AdmissionError) as excinfo:
            service.submit_payload(job_payload())
        assert excinfo.value.code == "shutting_down"
        assert excinfo.value.status == 503
        service.close()

    def test_queue_slot_freed_after_completion(
        self, small_stats, thread_executor_factory
    ):
        service = SweepService(
            workers=1,
            queue_depth=1,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        first = service.submit_payload(job_payload())
        assert first.wait(30)
        second = service.submit_payload(job_payload(rounds=9))
        assert second.wait(30)
        service.close()


class TestCacheShortCircuit:
    def test_warm_resubmission_never_touches_pool(self, cache, small_stats,
                                                  thread_executor_factory):
        service = SweepService(
            workers=1,
            cache=cache,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        cold = service.submit_payload(job_payload())
        assert cold.wait(30)
        assert not cold.warm
        assert service.pool_invocations == 1

        warm = service.submit_payload(job_payload())
        assert warm.done  # resolved synchronously at submit
        assert warm.warm
        assert warm.state == "done"
        assert service.pool_invocations == 1  # the pool never saw it
        assert warm.snapshot()["results"][0]["cached"] is True
        assert (
            warm.snapshot()["results"][0]["cycles"]
            == cold.snapshot()["results"][0]["cycles"]
        )
        assert service.metrics.hit_ratio() > 0
        service.close()

    def test_real_pool_warm_resubmission(self, cache):
        # The one end-to-end process-pool test: everything else injects.
        service = SweepService(workers=1, cache=cache)
        cold = service.submit_payload(job_payload())
        assert cold.wait(120)
        assert cold.state == "done"
        warm = service.submit_payload(job_payload())
        assert warm.done and warm.warm
        assert service.pool_invocations == 1
        assert (
            warm.snapshot()["results"][0]["cycles"]
            == cold.snapshot()["results"][0]["cycles"]
        )
        service.close()

    def test_cache_invalidation_hook_forces_cold_path(
        self, cache, small_stats, thread_executor_factory
    ):
        service = SweepService(
            workers=1,
            cache=cache,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        first = service.submit_payload(job_payload())
        assert first.wait(30)
        # Simulate a source change under a live server: the memoized
        # fingerprint is dropped and recomputes (to the same value here,
        # so the entry still hits — the hook's contract is recomputation).
        service.cache.invalidate()
        warm = service.submit_payload(job_payload())
        assert warm.done and warm.warm
        service.close()


class TestShardedJobs:
    """`shards`/`fabric` in the job JSON flow through to the shard driver."""

    def test_sharded_config_keys_parse(self):
        request = JobRequest.from_payload(job_payload(shards=2, fabric="staged"))
        point = request.points[0]
        assert point.config.shards == 2
        assert point.config.fabric == "staged"

    def test_sharded_point_runs_and_reports_shard_meta(
        self, cache, thread_executor_factory
    ):
        service = SweepService(
            workers=1, cache=cache, executor_factory=thread_executor_factory
        )
        record = service.submit_payload(job_payload(shards=2, fabric="staged"))
        assert record.wait(120)
        assert record.state == "done"
        row = record.snapshot()["results"][0]
        assert row["ok"], row["error"]
        # The service pins sharded points to in-process stepping.
        assert row["shards"] == {
            "shards": 2,
            "workers": 1,
            "windows": row["shards"]["windows"],
            "handoffs": row["shards"]["handoffs"],
        }
        assert row["shards"]["windows"] > 0
        # A serial run of the same workload is a different machine model:
        # distinct cache key, no shard block in its result row.
        serial = service.submit_payload(job_payload())
        assert serial.wait(120)
        assert serial.keys[0] != record.keys[0]
        assert "shards" not in serial.snapshot()["results"][0]
        service.close()


class TestConcurrentDeterminism:
    def test_identical_jobs_coalesce_to_one_execution(
        self, cache, small_stats, thread_executor_factory
    ):
        gate = threading.Event()
        calls = []

        def counting_task(payload):
            calls.append(payload)
            assert gate.wait(30)
            return payload[0], small_stats, 0.01, None

        service = SweepService(
            workers=2,
            cache=cache,
            queue_depth=8,
            executor_factory=thread_executor_factory,
            task=counting_task,
        )
        records = [service.submit_payload(job_payload()) for _ in range(4)]
        assert service.pool_invocations == 1  # all four coalesced
        gate.set()
        for record in records:
            assert record.wait(30)
        assert len(calls) == 1
        cycles = {r.snapshot()["results"][0]["cycles"] for r in records}
        assert cycles == {small_stats.cycles}
        # One simulation, three coalesced joiners.
        assert service.metrics.get("points.simulated") == 1
        assert service.metrics.get("points.coalesced") == 3
        service.close()

    def test_mixed_points_dedupe_within_one_job(
        self, cache, small_stats, thread_executor_factory
    ):
        service = SweepService(
            workers=2,
            cache=cache,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        record = service.submit_payload(
            {"points": [job_payload(), job_payload(), job_payload(rounds=3)]}
        )
        assert record.wait(30)
        assert service.pool_invocations == 2  # duplicate point coalesced
        service.close()


class TestFailuresAndWorkerDeath:
    def test_failed_point_fails_job_and_skips_cache(
        self, cache, thread_executor_factory
    ):
        def exploding_task(payload):
            return payload[0], None, 0.01, "ValueError: injected"

        service = SweepService(
            workers=1,
            cache=cache,
            executor_factory=thread_executor_factory,
            task=exploding_task,
        )
        record = service.submit_payload(job_payload())
        assert record.wait(30)
        assert record.state == "failed"
        assert "injected" in record.error
        assert cache.stores == 0  # failures never poison the cache
        # The same config resubmitted is cold again, not served a failure.
        again = service.submit_payload(job_payload())
        assert again.wait(30)
        assert not again.warm
        service.close()

    def test_broken_pool_unwinds_and_rebuilds(self, small_stats,
                                              thread_executor_factory):
        broken_once = []

        def dying_task(payload):
            if not broken_once:
                broken_once.append(True)
                raise BrokenProcessPool("a worker died")
            return payload[0], small_stats, 0.01, None

        service = SweepService(
            workers=1,
            executor_factory=thread_executor_factory,
            task=dying_task,
        )
        doomed = service.submit_payload(job_payload())
        assert doomed.wait(30)
        assert doomed.state == "failed"
        assert "worker process died" in doomed.error
        assert service.metrics.get("pool.broken") == 1
        # The service survives: the next job builds a fresh pool and runs.
        revived = service.submit_payload(job_payload())
        assert revived.wait(30)
        assert revived.state == "done"
        assert service.pool_rebuilds == 2
        service.close()


class TestGracefulShutdown:
    def test_close_drains_in_flight_jobs(self, small_stats,
                                         thread_executor_factory):
        gate = threading.Event()
        service = SweepService(
            workers=1,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats, gate),
        )
        record = service.submit_payload(job_payload())
        releaser = threading.Timer(0.2, gate.set)
        releaser.start()
        try:
            assert service.close(drain=True, timeout=30) is True
        finally:
            releaser.cancel()
        assert record.done
        assert record.state == "done"
        with pytest.raises(AdmissionError, match="draining"):
            service.submit_payload(job_payload())

    def test_close_without_drain_cancels(self, small_stats,
                                         thread_executor_factory):
        gate = threading.Event()
        service = SweepService(
            workers=1,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats, gate),
        )
        blocked = service.submit_payload(job_payload())
        queued = service.submit_payload(job_payload(rounds=9))
        gate.set()  # let the running task finish; the queued one may cancel
        service.close(drain=False)
        assert blocked.done and queued.done
        assert queued.state in ("done", "failed")  # cancelled or raced to done
        # Nothing hangs and every waiter was resolved.
        assert service.healthz()["status"] == "closed"

    def test_close_is_idempotent(self, small_stats, thread_executor_factory):
        service = SweepService(
            workers=1,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        record = service.submit_payload(job_payload())
        assert record.wait(30)
        assert service.close() is True
        assert service.close() is True


class TestEventsAndSnapshots:
    def test_event_stream_shape(self, cache, small_stats,
                                thread_executor_factory):
        service = SweepService(
            workers=1,
            cache=cache,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        record = service.submit_payload(
            {"label": "grid", "points": [job_payload(), job_payload(rounds=3)]}
        )
        assert record.wait(30)
        kinds = [e["event"] for e in record.events]
        assert kinds[0] == "job" and kinds[-1] == "job"
        assert kinds.count("point") == 2
        final = record.events[-1]
        assert final["state"] == "done"
        assert final["job"]["done_points"] == 2
        point_events = [e for e in record.events if e["event"] == "point"]
        assert {e["index"] for e in point_events} == {0, 1}
        for event in point_events:
            assert event["job"] == record.id
            assert event["cycles"] == small_stats.cycles

    def test_late_subscriber_gets_full_replay(self, small_stats,
                                              thread_executor_factory):
        service = SweepService(
            workers=1,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        record = service.submit_payload(job_payload())
        assert record.wait(30)
        seen = []
        service.subscribe(record, seen.append)
        assert seen == record.events
        service.close()

    def test_metrics_snapshot_shape(self, cache, small_stats,
                                    thread_executor_factory):
        service = SweepService(
            workers=2,
            cache=cache,
            queue_depth=5,
            executor_factory=thread_executor_factory,
            task=canned_task(small_stats),
        )
        record = service.submit_payload(job_payload())
        assert record.wait(30)
        service.submit_payload(job_payload())  # warm
        snapshot = service.metrics_snapshot()
        assert snapshot["queue"] == {"depth": 0, "limit": 5}
        assert snapshot["workers"]["pool_size"] == 2
        assert snapshot["pool_invocations"] == 1
        assert snapshot["cache_hit_ratio"] == 0.5
        assert snapshot["counters"]["serve.jobs.submitted"] == 2
        assert snapshot["latency"]["warm"]["count"] == 1
        assert snapshot["latency"]["cold"]["count"] == 1
        assert snapshot["budgets"]["queue_depth"] == 5
        service.close()
