"""End-to-end HTTP tests: submission, streaming, rejection, shutdown.

Each test boots a real asyncio server (ephemeral port, daemon thread)
around a SweepService with a thread-pool executor, and speaks plain
``http.client`` at it — the same wire protocol external clients use.
"""

from __future__ import annotations

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import BackgroundServer, SweepService
from repro.sweep import ResultCache

from .conftest import job_payload
from .test_service import canned_task


@pytest.fixture
def server(cache, small_stats):
    service = SweepService(
        workers=2,
        cache=cache,
        queue_depth=4,
        max_points=8,
        executor_factory=lambda w: ThreadPoolExecutor(max_workers=w),
        task=canned_task(small_stats),
    )
    with BackgroundServer(service) as background:
        yield background


def request(server, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        conn.request(
            method, path, json.dumps(body) if body is not None else None
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read() or "null")
    finally:
        conn.close()


def stream_events(server, job_id, timeout=30):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/stream")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        return [json.loads(line) for line in response if line.strip()]
    finally:
        conn.close()


class TestBasicEndpoints:
    def test_healthz(self, server):
        status, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_metrics_shape(self, server):
        status, body = request(server, "GET", "/metrics")
        assert status == 200
        assert "counters" in body and "latency" in body and "workers" in body

    def test_unknown_route_404(self, server):
        status, body = request(server, "GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unknown_job_404(self, server):
        status, body = request(server, "GET", "/jobs/job-999999")
        assert status == 404


class TestSubmission:
    def test_submit_poll_complete(self, server):
        status, body = request(server, "POST", "/jobs", job_payload())
        assert status in (200, 202)
        job_id = body["job"]["id"]
        events = stream_events(server, job_id)  # blocks until done
        status, body = request(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        assert body["job"]["state"] == "done"
        row = body["job"]["results"][0]
        assert row["ok"] and row["cycles"] > 0
        assert events[-1]["state"] == "done"

    def test_submit_lists_job(self, server):
        _, body = request(server, "POST", "/jobs", job_payload())
        job_id = body["job"]["id"]
        stream_events(server, job_id)
        status, body = request(server, "GET", "/jobs?limit=5")
        assert status == 200
        assert any(j["id"] == job_id for j in body["jobs"])

    def test_bad_json_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            conn.request("POST", "/jobs", "{not json")
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert body["error"]["code"] == "bad_request"

    def test_unknown_workload_400(self, server):
        status, body = request(
            server, "POST", "/jobs", {"workload": {"name": "linpack"}}
        )
        assert status == 400
        assert "unknown workload" in body["error"]["message"]

    def test_over_budget_413(self, server):
        status, body = request(
            server,
            "POST",
            "/jobs",
            {"points": [job_payload(rounds=r) for r in range(1, 11)]},
        )
        assert status == 413
        assert body["error"]["code"] == "over_budget"


class TestStreaming:
    def test_ndjson_stream_replays_and_completes(self, server):
        _, body = request(server, "POST", "/jobs", job_payload())
        job_id = body["job"]["id"]
        events = stream_events(server, job_id)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "job"
        assert "point" in kinds
        assert events[-1]["event"] == "job"
        assert events[-1]["state"] in ("done", "failed")
        point = next(e for e in events if e["event"] == "point")
        assert point["job"] == job_id
        assert point["done"] == point["total"] == 1
        # A second stream of the finished job replays instantly.
        replay = stream_events(server, job_id)
        assert [e["event"] for e in replay] == kinds


class TestWarmPath:
    def test_warm_resubmission_and_hit_ratio(self, server):
        status, body = request(server, "POST", "/jobs", job_payload())
        stream_events(server, body["job"]["id"])
        _, cold_metrics = request(server, "GET", "/metrics")

        status, body = request(server, "POST", "/jobs", job_payload())
        assert status == 200  # completed synchronously from cache
        assert body["job"]["state"] == "done"
        assert body["job"]["warm"] is True

        _, warm_metrics = request(server, "GET", "/metrics")
        assert warm_metrics["pool_invocations"] == cold_metrics["pool_invocations"]
        assert warm_metrics["cache_hit_ratio"] > 0
        assert warm_metrics["latency"]["warm"]["count"] == 1


class TestConcurrentHTTPSubmissions:
    def test_parallel_identical_submissions_one_execution(
        self, cache, small_stats
    ):
        gate = threading.Event()
        service = SweepService(
            workers=2,
            cache=cache,
            queue_depth=16,
            executor_factory=lambda w: ThreadPoolExecutor(max_workers=w),
            task=canned_task(small_stats, gate),
        )
        with BackgroundServer(service) as server:
            results = []

            def submit():
                results.append(request(server, "POST", "/jobs", job_payload()))

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            gate.set()
            assert all(status == 202 for status, _ in results)
            ids = [body["job"]["id"] for _, body in results]
            cycle_sets = set()
            for job_id in ids:
                events = stream_events(server, job_id)
                final = events[-1]["job"]
                assert final["state"] == "done"
                cycle_sets.add(final["results"][0]["cycles"])
            assert cycle_sets == {small_stats.cycles}
            _, metrics = request(server, "GET", "/metrics")
            assert metrics["pool_invocations"] == 1


class TestShutdown:
    def test_shutdown_endpoint_drains_and_exits(self, cache, small_stats):
        gate = threading.Event()
        service = SweepService(
            workers=1,
            cache=cache,
            executor_factory=lambda w: ThreadPoolExecutor(max_workers=w),
            task=canned_task(small_stats, gate),
        )
        with BackgroundServer(service) as server:
            _, body = request(server, "POST", "/jobs", job_payload())
            record = service.job(body["job"]["id"])
            status, body = request(server, "POST", "/shutdown")
            assert status == 200
            # Draining: new submissions refused while in-flight work runs.
            status, body = request(server, "POST", "/jobs", job_payload(rounds=9))
            assert status == 503
            assert body["error"]["code"] == "shutting_down"
            gate.set()
            server.shutdown(timeout=30)
            assert record.done and record.state == "done"
        assert service.healthz()["status"] == "closed"
