"""Unit tests for the service metrics primitives."""

from __future__ import annotations

import pytest

from repro.serve import LatencyWindow, ServiceMetrics


class TestLatencyWindow:
    def test_empty_window_has_no_percentiles(self):
        window = LatencyWindow()
        assert window.percentile(50) is None
        snapshot = window.snapshot()
        assert snapshot == {
            "count": 0,
            "p50_ms": None,
            "p95_ms": None,
            "max_ms": None,
        }

    def test_percentiles_over_known_values(self):
        window = LatencyWindow()
        for ms in range(1, 101):  # 1ms..100ms
            window.observe(ms / 1e3)
        assert window.percentile(50) == pytest.approx(0.050)
        assert window.percentile(95) == pytest.approx(0.095)
        assert window.percentile(100) == pytest.approx(0.100)
        snapshot = window.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50_ms"] == pytest.approx(50.0)
        assert snapshot["p95_ms"] == pytest.approx(95.0)
        assert snapshot["max_ms"] == pytest.approx(100.0)

    def test_window_slides_but_count_accumulates(self):
        window = LatencyWindow(capacity=4)
        for value in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            window.observe(value)
        assert window.count == 8
        assert window.percentile(50) == 9.0  # old 1.0s aged out

    def test_negative_observations_clamped(self):
        window = LatencyWindow()
        window.observe(-5.0)
        assert window.percentile(50) == 0.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            LatencyWindow(capacity=0)
        with pytest.raises(ValueError):
            LatencyWindow().percentile(101)


class TestServiceMetrics:
    def test_prefix_and_hit_ratio(self):
        metrics = ServiceMetrics()
        assert metrics.hit_ratio() == 0.0  # no traffic: no division by zero
        metrics.bump("points.cache_hit", 3)
        metrics.bump("points.simulated", 1)
        assert metrics.get("points.cache_hit") == 3
        assert metrics.counters.get("serve.points.cache_hit") == 3
        assert metrics.hit_ratio() == pytest.approx(0.75)

    def test_warm_cold_split(self):
        metrics = ServiceMetrics()
        metrics.observe_job(0.001, warm=True)
        metrics.observe_job(1.0, warm=False)
        snapshot = metrics.snapshot()
        assert snapshot["latency"]["warm"]["count"] == 1
        assert snapshot["latency"]["cold"]["count"] == 1
        assert snapshot["latency"]["all"]["count"] == 2
        assert snapshot["latency"]["warm"]["p50_ms"] < (
            snapshot["latency"]["cold"]["p50_ms"]
        )

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = ServiceMetrics()
        metrics.bump("jobs.submitted")
        metrics.observe_job(0.5, warm=False)
        json.dumps(metrics.snapshot())  # must not raise
