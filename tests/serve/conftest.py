"""Shared fixtures for the service-layer tests.

Real simulations are tiny (4-proc hotspot, ~0.1s) but still dominate a
test's wall clock, so most tests inject a thread-pool executor and/or a
canned task: the service's plumbing — admission, dedup, caching, events,
shutdown — is identical whichever executor runs the points.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.machine import AlewifeConfig, MachineStats, run_experiment
from repro.sweep import ResultCache, WorkloadSpec


def job_payload(rounds: int = 2, **config_overrides) -> dict:
    config = {"n_procs": 4, "protocol": "fullmap", "max_cycles": 2_000_000}
    config.update(config_overrides)
    return {
        "config": config,
        "workload": {"name": "hotspot", "params": {"rounds": rounds}},
    }


@pytest.fixture(scope="session")
def small_stats() -> MachineStats:
    """One real result to hand out from canned tasks."""
    config = AlewifeConfig(n_procs=4, protocol="fullmap", max_cycles=2_000_000)
    return run_experiment(config, WorkloadSpec("hotspot", {"rounds": 2}).build())


@pytest.fixture
def thread_executor_factory():
    """In-process executor: points run on threads, no fork cost."""
    return lambda workers: ThreadPoolExecutor(max_workers=workers)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")
