"""Crash-safe serving: the job journal and boot-time recovery.

A "restart" here is literal: one service over a journal is closed (or
abandoned mid-job, as a crash would), and a *second* service is built
over the same journal file and cache directory.  The second service must
answer ``/jobs/<id>`` for jobs it never admitted, replay their full
NDJSON history to reconnecting stream clients, and resubmit whatever was
interrupted under its original id.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import BackgroundServer, JobJournal, JobRequest, SweepService

from .conftest import job_payload
from .test_service import canned_task


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.ndjson"


def _service(cache, journal_path, small_stats):
    return SweepService(
        workers=2,
        cache=cache,
        journal=JobJournal(journal_path),
        executor_factory=lambda w: ThreadPoolExecutor(max_workers=w),
        task=canned_task(small_stats),
    )


class TestJournalLog:
    def test_submit_and_events_logged(self, cache, journal_path, small_stats):
        service = _service(cache, journal_path, small_stats)
        record = service.submit(JobRequest.from_payload(job_payload()))
        assert record.wait(30)
        service.close(drain=True)
        entries = JobJournal(journal_path).load()
        assert list(entries) == [record.id]
        entry = entries[record.id]
        # The payload must round-trip through normal validation.
        JobRequest.from_payload(entry["payload"])
        assert entry["events"] == record.events

    def test_torn_tail_dropped(self, journal_path):
        journal = JobJournal(journal_path)
        journal.record_submit("job-000001", {"x": 1})
        journal.close()
        with open(journal_path, "a") as fh:
            fh.write('{"kind":"event","id":"job-0000')
        assert list(journal.load()) == ["job-000001"]


class TestRecovery:
    def test_restart_restores_finished_jobs(self, cache, journal_path, small_stats):
        first = _service(cache, journal_path, small_stats)
        record = first.submit(JobRequest.from_payload(job_payload()))
        assert record.wait(30)
        original = record.snapshot()
        history = list(record.events)
        first.close(drain=True)

        second = _service(cache, journal_path, small_stats)
        summary = second.recover()
        assert summary == {"jobs": 1, "restored": 1, "resubmitted": 0}
        restored = second.job(record.id)
        assert restored is not None and restored.done
        assert restored.snapshot()["results"] == original["results"]
        assert restored.snapshot()["state"] == original["state"]
        # A reconnecting subscriber replays the full history.
        replayed: list[dict] = []
        second.subscribe(restored, replayed.append)
        assert replayed == history
        second.close(drain=True)

    def test_restart_resubmits_interrupted_jobs(
        self, cache, journal_path, small_stats
    ):
        # Emulate a crash mid-job: the journal has the submission (and
        # maybe some progress events) but no terminal record.
        journal = JobJournal(journal_path)
        journal.record_submit("job-000007", job_payload())
        journal.close()

        service = _service(cache, journal_path, small_stats)
        summary = service.recover()
        assert summary == {"jobs": 1, "restored": 0, "resubmitted": 1}
        resumed = service.job("job-000007")
        assert resumed is not None
        assert resumed.wait(30) and resumed.state == "done"
        # Fresh ids never collide with recovered ones.
        new = service.submit(JobRequest.from_payload(job_payload()))
        assert int(new.id.rsplit("-", 1)[1]) > 7
        service.close(drain=True)

    def test_resubmitted_job_hits_cache(self, cache, journal_path, small_stats):
        first = _service(cache, journal_path, small_stats)
        record = first.submit(JobRequest.from_payload(job_payload()))
        assert record.wait(30)
        first.close(drain=True)

        # Strip the terminal event so the job looks interrupted, then
        # recover: the point must come back from the cache, not the pool.
        lines = [
            line
            for line in journal_path.read_text().splitlines()
            if '"state":"done"' not in line
        ]
        journal_path.write_text("\n".join(lines) + "\n")
        second = _service(cache, journal_path, small_stats)
        summary = second.recover()
        assert summary["resubmitted"] == 1
        resumed = second.job(record.id)
        assert resumed.wait(30) and resumed.state == "done"
        assert resumed.cached_points == len(resumed.request.points)
        second.close(drain=True)

    def test_recover_without_journal_is_noop(self, cache, small_stats):
        service = SweepService(
            workers=1,
            cache=cache,
            executor_factory=lambda w: ThreadPoolExecutor(max_workers=w),
            task=canned_task(small_stats),
        )
        assert service.recover() == {"jobs": 0, "restored": 0, "resubmitted": 0}
        service.close(drain=True)

    def test_metrics_expose_journal_and_cache_write_errors(
        self, cache, journal_path, small_stats
    ):
        service = _service(cache, journal_path, small_stats)
        snapshot = service.metrics_snapshot()
        assert snapshot["journal"]["enabled"] is True
        assert snapshot["journal"]["path"] == str(journal_path)
        assert snapshot["cache"]["write_errors"] == 0
        service.close(drain=True)


class TestRecoveredStreamOverHttp:
    def test_reconnecting_stream_replays_history(
        self, cache, journal_path, small_stats
    ):
        """Full wire-level restart: the NDJSON stream of a job finished
        before the 'crash' replays, terminated by its terminal event."""
        first = _service(cache, journal_path, small_stats)
        record = first.submit(JobRequest.from_payload(job_payload()))
        assert record.wait(30)
        first.close(drain=True)

        second = _service(cache, journal_path, small_stats)
        second.recover()
        with BackgroundServer(second) as server:
            import http.client

            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            try:
                conn.request("GET", f"/jobs/{record.id}/stream")
                response = conn.getresponse()
                assert response.status == 200
                events = [
                    json.loads(line) for line in response if line.strip()
                ]
            finally:
                conn.close()
        assert events == record.events
        assert events[-1]["event"] == "job"
        assert events[-1]["state"] == "done"
