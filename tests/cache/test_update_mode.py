"""Cache-side tests for update-mode blocks (§6 extension plumbing).

Update-mode blocks require their home directory in Trap-Always mode (the
software handler owns the UPDATE write-through), so these tests run on a
small LimitLESS machine configured through the extension's own API.
"""

from __future__ import annotations

import pytest

from repro.extensions import make_update_block
from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.workloads.base import Workload

from .test_controller import Rig


class _Script(Workload):
    """Drives the update-mode block with an explicit op sequence."""

    name = "update-script"

    def __init__(self, steps):
        self.steps = steps  # list of (proc, op-tuple factory given addr)
        self.results = []
        self.addr = None

    def build(self, machine):
        var = machine.allocator.alloc_scalar("upd.var", home=0)
        self.addr = var.base
        per_proc: dict[int, list] = {}
        for proc, make in self.steps:
            per_proc.setdefault(proc, []).append(make)

        def program(p, makes):
            for make in makes:
                value = yield make(var.base)
                self.results.append((p, value))
                yield ops.think(60)

        return {p: [program(p, makes)] for p, makes in per_proc.items()} or {
            0: [iter(())]
        }


def run_script(steps, n_procs=3):
    machine = AlewifeMachine(
        AlewifeConfig(
            n_procs=n_procs,
            protocol="limitless",
            pointers=2,
            ts=30,
            cache_lines=256,
            segment_bytes=1 << 16,
            max_cycles=2_000_000,
        )
    )
    workload = _Script(steps)
    programs = workload.build(machine)
    make_update_block(machine, workload.addr)
    def idle():
        yield ops.think(1)

    for p in range(n_procs):
        gens = programs.get(p) or [idle()]
        for gen in gens:
            machine.nodes[p].processor.add_thread(gen)
    for node in machine.nodes:
        node.start()
    machine.sim.run()
    assert all(n.processor.done for n in machine.nodes)
    return machine, workload


class TestUpdateModeCacheSide:
    def test_store_with_copy_writes_through(self):
        machine, workload = run_script(
            [
                (1, ops.load),                      # get a read-only copy
                (1, lambda a: ops.store(a, 42)),    # write through
                (1, ops.load),                      # still readable locally
            ]
        )
        assert machine.nodes[0].memory.peek_word(workload.addr) == 42
        cache = machine.nodes[1].cache_controller
        assert cache.counters.get("cache.write_throughs") == 1
        # the copy stayed read-only: no exclusivity dance
        line = cache.array.lookup(machine.space.block_of(workload.addr))
        assert line is not None and line.state.name == "READ_ONLY"
        assert (1, 42) in workload.results

    def test_store_without_copy_fetches_then_writes_through(self):
        machine, workload = run_script([(2, lambda a: ops.store(a, 9))])
        assert machine.nodes[0].memory.peek_word(workload.addr) == 9
        cache = machine.nodes[2].cache_controller
        assert cache.counters.get("cache.write_throughs") == 1
        # the fetch used a read request, never an exclusive one
        assert cache.counters.get("cache.upgrades") == 0

    def test_rmw_rejected(self):
        rig = Rig()
        blk = rig.space.block_of(rig.block())
        rig.caches[1].update_blocks.add(blk)
        with pytest.raises(ValueError, match="update-mode"):
            rig.caches[1].access("rmw", blk, lambda v: v + 1, lambda v: None)

    def test_sharers_absorb_the_push(self):
        machine, workload = run_script(
            [
                (1, ops.load),
                (2, ops.load),
                (1, lambda a: ops.store(a, 7)),
            ]
        )
        assert machine.nodes[2].counters.get("cache.updates_absorbed") >= 1
        blk = machine.space.block_of(workload.addr)
        line = machine.nodes[2].cache_array.lookup(blk)
        if line is not None:
            word = machine.space.word_in_block(workload.addr)
            assert line.data.words[word] == 7
