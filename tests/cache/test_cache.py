"""Tests for the direct-mapped cache array."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cache.cache import CacheArray
from repro.cache.states import CacheState
from repro.mem.address import AddressSpace
from repro.mem.memory import BlockData


@pytest.fixture
def array(space4):
    return CacheArray(space4, n_lines=16)


def block_at(space, home, index):
    return space.address(home, index * space.block_bytes)


class TestIndexing:
    def test_power_of_two_required(self, space4):
        with pytest.raises(ValueError):
            CacheArray(space4, n_lines=10)

    def test_capacity(self, array, space4):
        assert array.capacity_bytes == 16 * space4.block_bytes

    def test_conflicting_blocks_share_an_index(self, array, space4):
        a = block_at(space4, 0, 0)
        b = block_at(space4, 0, 16)  # 16 lines -> wraps to index 0
        assert array.index_of(a) == array.index_of(b)

    @given(index=st.integers(min_value=0, max_value=200))
    def test_index_in_range(self, index):
        space = AddressSpace(n_nodes=2, block_bytes=16, segment_bytes=1 << 16)
        array = CacheArray(space, n_lines=16)
        blk = space.address(1, (index * 16) % (1 << 16))
        assert 0 <= array.index_of(blk) < 16


class TestInstallLookup:
    def test_miss_then_hit(self, array, space4):
        blk = block_at(space4, 0, 1)
        assert array.lookup(blk) is None
        array.install(blk, CacheState.READ_ONLY, BlockData(4))
        line = array.lookup(blk)
        assert line is not None and line.state is CacheState.READ_ONLY

    def test_conflict_eviction_returns_victim(self, array, space4):
        a = block_at(space4, 0, 0)
        b = block_at(space4, 0, 16)
        array.install(a, CacheState.READ_WRITE, BlockData(4))
        victim = array.install(b, CacheState.READ_ONLY, BlockData(4))
        assert victim is not None and victim.block == a
        assert array.lookup(a) is None
        assert array.lookup(b) is not None

    def test_refill_same_block_is_not_eviction(self, array, space4):
        blk = block_at(space4, 0, 2)
        array.install(blk, CacheState.READ_ONLY, BlockData(4))
        victim = array.install(blk, CacheState.READ_WRITE, BlockData(4))
        assert victim is None

    def test_invalidate(self, array, space4):
        blk = block_at(space4, 0, 3)
        array.install(blk, CacheState.READ_ONLY, BlockData(4))
        dropped = array.invalidate(blk)
        assert dropped is not None
        assert array.lookup(blk) is None
        assert array.invalidate(blk) is None  # second time: nothing

    def test_valid_lines_listing(self, array, space4):
        for i in range(3):
            array.install(block_at(space4, 0, i), CacheState.READ_ONLY, BlockData(4))
        array.invalidate(block_at(space4, 0, 1))
        assert len(array.valid_lines()) == 2

    def test_tag_mismatch_is_miss(self, array, space4):
        a = block_at(space4, 0, 0)
        b = block_at(space4, 0, 16)
        array.install(a, CacheState.READ_ONLY, BlockData(4))
        assert array.lookup(b) is None
