"""Tests for the cache-side coherence controller against a real directory."""

from __future__ import annotations

import pytest

from repro.cache.cache import CacheArray
from repro.cache.controller import CacheController
from repro.cache.states import CacheState
from repro.coherence.fullmap import FullMapController
from repro.mem.address import AddressSpace
from repro.mem.memory import MainMemory
from repro.network.fabric import IdealNetwork
from repro.network.interface import NetworkInterface
from repro.sim.kernel import Simulator


class Rig:
    """Node 0: directory + memory.  Nodes 1..n: caches under test."""

    def __init__(self, n_nodes=3, n_lines=16):
        self.sim = Simulator(max_cycles=1_000_000)
        self.space = AddressSpace(n_nodes=n_nodes, block_bytes=16, segment_bytes=1 << 16)
        self.net = IdealNetwork(self.sim, n_nodes, latency=2)
        self.nics = [NetworkInterface(self.sim, i, self.net) for i in range(n_nodes)]
        self.memory = MainMemory(self.space, 0)
        self.dir = FullMapController(
            self.sim, 0, self.space, self.memory, self.nics[0]
        )
        self.caches = {}
        for i in range(n_nodes):
            if i == 0:
                continue
            array = CacheArray(self.space, n_lines)
            self.caches[i] = CacheController(
                self.sim, i, self.space, array, self.nics[i]
            )
        # node 0 also needs a cache handler for INVs to the home cache
        if 0 not in self.caches:
            array = CacheArray(self.space, n_lines)
            self.caches[0] = CacheController(
                self.sim, 0, self.space, array, self.nics[0]
            )

    def access(self, node, kind, addr, payload=None):
        results = []
        self.caches[node].access(kind, addr, payload, results.append)
        self.sim.run()
        assert results, f"access by node {node} never completed"
        return results[0]

    def block(self, index=0):
        return self.space.address(0, 0x200 + index * 16)


@pytest.fixture
def rig():
    return Rig()


class TestLoadsAndStores:
    def test_load_returns_memory_value(self, rig):
        addr = rig.block()
        rig.memory.poke_word(addr, 123)
        assert rig.access(1, "load", addr) == 123

    def test_second_load_hits(self, rig):
        addr = rig.block()
        rig.access(1, "load", addr)
        misses = rig.caches[1].counters.get("cache.misses.load")
        hits = rig.caches[1].counters.get("cache.hits.load")
        rig.access(1, "load", addr)
        assert rig.caches[1].counters.get("cache.misses.load") == misses
        assert rig.caches[1].counters.get("cache.hits.load") == hits + 1

    def test_store_then_load_same_node(self, rig):
        addr = rig.block()
        rig.access(1, "store", addr, 55)
        assert rig.access(1, "load", addr) == 55

    def test_store_visible_to_other_node(self, rig):
        addr = rig.block()
        rig.access(1, "store", addr, 77)
        assert rig.access(2, "load", addr) == 77

    def test_write_write_transfer(self, rig):
        addr = rig.block()
        rig.access(1, "store", addr, 1)
        rig.access(2, "store", addr, 2)
        assert rig.access(1, "load", addr) == 2

    def test_upgrade_keeps_other_words(self, rig):
        blk = rig.block()
        rig.access(1, "store", blk, 9)        # word 0
        rig.access(2, "store", blk + 4, 8)    # word 1, different writer
        assert rig.access(1, "load", blk) == 9
        assert rig.access(1, "load", blk + 4) == 8


class TestRmw:
    def test_fetch_add_returns_old(self, rig):
        addr = rig.block()
        old = rig.access(1, "rmw", addr, lambda v: v + 1)
        assert old == 0
        assert rig.access(1, "load", addr) == 1

    def test_rmw_serializes_across_nodes(self, rig):
        addr = rig.block()
        olds = []
        for node in (1, 2, 1, 2):
            olds.append(rig.access(node, "rmw", addr, lambda v: v + 1))
        assert olds == [0, 1, 2, 3]

    def test_concurrent_rmw_no_lost_updates(self):
        rig = Rig(n_nodes=5)
        addr = rig.block()
        olds = []
        for node in (1, 2, 3, 4):
            rig.caches[node].access("rmw", addr, lambda v: v + 1, olds.append)
        rig.sim.run()
        assert sorted(olds) == [0, 1, 2, 3]
        assert rig.access(1, "load", addr) == 4


class TestEvictionsAndInvalidations:
    def test_dirty_eviction_writes_back(self, rig):
        a = rig.block(0)
        conflict = rig.block(16)  # same cache index (16 lines)
        rig.access(1, "store", a, 31)
        rig.access(1, "load", conflict)  # evicts the dirty line -> REPM
        rig.sim.run()
        assert rig.memory.peek_word(a) == 31
        assert rig.caches[1].counters.get("cache.evict_rw") == 1

    def test_clean_eviction_is_silent(self, rig):
        a = rig.block(0)
        conflict = rig.block(16)
        rig.access(1, "load", a)
        rig.access(1, "load", conflict)
        assert rig.caches[1].counters.get("cache.evict_ro") == 1
        # directory still lists node 1 (stale pointer is allowed)
        assert 1 in rig.dir.directory.entry(a).sharers

    def test_inv_to_absent_block_still_acked(self, rig):
        a = rig.block(0)
        conflict = rig.block(16)
        rig.access(1, "load", a)
        rig.access(1, "load", conflict)  # silently dropped a
        rig.access(2, "store", a, 5)     # directory INVs stale pointer at 1
        assert rig.dir.directory.entry(a).state.name == "READ_WRITE"

    def test_dirty_copy_answers_inv_with_update(self, rig):
        a = rig.block()
        rig.access(1, "store", a, 66)
        rig.access(2, "load", a)
        assert rig.memory.peek_word(a) == 66
        line = rig.caches[1].array.lookup(a)
        assert line is None or line.state is CacheState.INVALID


class TestBusyRetry:
    def test_retry_eventually_succeeds(self):
        rig = Rig(n_nodes=6)
        addr = rig.block()
        results = []
        # Storm of writers: BUSYs are inevitable, all must complete.
        for node in (1, 2, 3, 4, 5):
            rig.caches[node].access("store", addr, node, results.append)
        rig.sim.run()
        assert len(results) == 5
        assert sum(c.counters.get("cache.busy_retries") for c in rig.caches.values()) > 0

    def test_mean_miss_latency_tracked(self, rig):
        addr = rig.block()
        rig.access(1, "load", addr)
        assert rig.caches[1].mean_miss_latency() > 0

    def test_idle_after_completion(self, rig):
        addr = rig.block()
        rig.access(1, "load", addr)
        assert rig.caches[1].idle()


class TestApiValidation:
    def test_unknown_kind_rejected(self, rig):
        with pytest.raises(ValueError):
            rig.caches[1].access("swizzle", rig.block(), None, lambda v: None)

    def test_merge_read_then_write_waiters(self, rig):
        addr = rig.block()
        results = []
        cache = rig.caches[1]
        cache.access("load", addr, None, results.append)
        cache.access("store", addr, 42, results.append)  # joins the read MSHR
        rig.sim.run()
        assert len(results) == 2
        assert rig.access(1, "load", addr) == 42
