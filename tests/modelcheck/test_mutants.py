"""Seeded-mutant self-test: the checker must *find* planted bugs.

A verifier that always says PASS is indistinguishable from one that
works, so each mutant controller plants a classic protocol bug and the
tests assert the checker produces the expected violation kind with a
short, replayable counterexample trace.
"""

from __future__ import annotations

from repro.modelcheck import ProtocolModel, explore, format_trace, replay
from repro.verify.predicates import check_single_writer


def test_dropped_inv_breaks_single_writer():
    """Skipping the overflow eviction INV leaves a stale READ_ONLY copy
    alongside the new writer — the textbook SWMR violation."""
    model = ProtocolModel("limited_dropinv", 3)
    result = explore(model, max_states=50_000, predicates=[check_single_writer])
    v = result.violation
    assert v is not None and v.kind == "invariant"
    assert any("READ_WRITE" in p for p in v.problems)
    # BFS guarantees a *shortest* witness: two reads to overflow the
    # single pointer, then one write — a handful of steps, not hundreds.
    assert len(v.actions) <= 12, v.actions


def test_dropped_inv_trace_is_replayable_and_readable():
    model = ProtocolModel("limited_dropinv", 3)
    result = explore(model, max_states=50_000, predicates=[check_single_writer])
    steps = replay(model, result.violation.actions)
    assert len(steps) == len(result.violation.actions)
    assert all(s.error is None for s in steps)
    text = format_trace(model, result.violation)
    # the story must be told in the paper's Table 2 vocabulary
    assert "RREQ" in text and "WREQ" in text
    assert "READ_WRITE" in text


def test_dropped_inv_caught_by_default_invariants_too():
    result = explore(ProtocolModel("limited_dropinv", 3), max_states=50_000)
    assert result.violation is not None


def test_lost_ack_deadlocks():
    """An ack counter debit that can never be repaid wedges the write
    transaction forever; the deadlock detector must say so."""
    model = ProtocolModel("limited_lostack", 3)
    result = explore(model, max_states=50_000)
    v = result.violation
    assert v is not None and v.kind == "deadlock"
    assert any("acknowledg" in p for p in v.problems)
    text = format_trace(model, v)
    assert "WREQ" in text


def test_mutants_are_not_registered_protocols():
    from repro.coherence.registry import protocol_names

    assert "limited_dropinv" not in protocol_names()
    assert "limited_lostack" not in protocol_names()
