"""Canonicalization unit tests: renumbering, permutation, key equality."""

from __future__ import annotations

from repro.modelcheck.model import ProtocolModel
from repro.modelcheck.state import (
    canonical_key,
    node_permutations,
    permute_state,
    renumber_txns,
)


def _msg(src, opcode, txn=None, data=None):
    return (src, opcode, txn, data)


def test_node_permutations_fix_home():
    perms = node_permutations(3)
    assert perms[0] == (0, 1, 2)  # identity first
    assert all(p[0] == 0 for p in perms)
    assert len(perms) == 2
    assert len(node_permutations(4)) == 6


def test_renumber_compacts_sparse_ids_order_preservingly():
    s = ProtocolModel("fullmap", 3).initial_state()
    sparse = s._replace(
        txn=7,
        channels=(((1, 0), (_msg(1, "ACKC", 3), _msg(1, "ACKC", 7))),),
    )
    compact = renumber_txns(sparse)
    assert compact.txn == 1
    assert compact.channels == (((1, 0), (_msg(1, "ACKC", 0), _msg(1, "ACKC", 1))),)


def test_renumber_is_identity_on_compact_states():
    s = ProtocolModel("fullmap", 3).initial_state()
    assert renumber_txns(s) is s  # fast path: already 0..k-1
    mixed = s._replace(channels=(((1, 0), (_msg(1, "ACKC", None),)),))
    assert renumber_txns(mixed) is mixed  # None is not an id


def test_permute_round_trip():
    model = ProtocolModel("fullmap", 3)
    s = model.initial_state()
    step = model.apply(s, ("store", 1))
    state = step.state
    perm = (0, 2, 1)
    assert permute_state(permute_state(state, perm), perm) == state


def test_symmetric_successors_share_a_canonical_key():
    model = ProtocolModel("fullmap", 3)
    init = model.initial_state()
    via1 = model.apply(init, ("load", 1)).state
    via2 = model.apply(init, ("load", 2)).state
    assert via1 != via2
    assert model.key(via1) == model.key(via2)


def test_asymmetric_protocol_keeps_nodes_distinct():
    model = ProtocolModel("chained", 3)
    init = model.initial_state()
    via1 = model.apply(init, ("load", 1)).state
    via2 = model.apply(init, ("load", 2)).state
    assert model.key(via1) != model.key(via2)


def test_canonical_key_equal_for_permuted_twin():
    model = ProtocolModel("fullmap", 3)
    s = model.apply(model.initial_state(), ("store", 2)).state
    twin = permute_state(s, (0, 2, 1))
    assert canonical_key(s, symmetric=True) == canonical_key(twin, symmetric=True)
    # the key is a representative member of the class itself
    assert canonical_key(s, symmetric=True) in (s, twin)
