"""Model checking with message-fault transitions (drop / duplicate).

The hardened protocols must stay deadlock-free and coherent when the
model's adversarial network spends its fault budget; the *unhardened*
protocols must demonstrably deadlock, which is the whole argument for the
timeout/retry machinery.
"""

from __future__ import annotations

import pytest

from repro.modelcheck.counterexample import format_trace
from repro.modelcheck.explore import explore
from repro.modelcheck.faults import FaultyProtocolModel


class TestUnhardened:
    def test_fullmap_deadlocks_on_one_drop(self):
        model = FaultyProtocolModel("fullmap", 2, faults=1, hardened=False)
        result = explore(model, max_states=200_000)
        assert not result.ok
        assert result.violation.kind == "deadlock"
        trace = format_trace(model, result.violation)
        assert "drops" in trace


class TestHardened:
    @pytest.mark.parametrize(
        "protocol", ["fullmap", "limited", "limited_broadcast", "limitless", "chained"]
    )
    def test_one_fault_exhaustive(self, protocol):
        model = FaultyProtocolModel(protocol, 2, faults=1, hardened=True)
        result = explore(model, max_states=500_000)
        assert result.ok, result.violation and format_trace(model, result.violation)
        assert result.complete
        # The fault transitions genuinely enlarge the state space.
        base = explore(FaultyProtocolModel(protocol, 2, faults=0), max_states=500_000)
        assert result.states > base.states

    def test_two_faults_fullmap(self):
        model = FaultyProtocolModel("fullmap", 2, faults=2)
        result = explore(model, max_states=500_000)
        assert result.ok and result.complete

    def test_trap_always_is_known_unhardened(self):
        # Software-only coherence defers every packet's *processing* behind
        # the trap queue while DACKs ride receive order, so a duplicated
        # WREQ can be regranted after the owner's write-back already
        # retired — the checker pins this documented limitation, which is
        # why trap_always is excluded from default --faults targets.
        model = FaultyProtocolModel("trap_always", 2, faults=1, hardened=True)
        result = explore(model, max_states=200_000)
        assert not result.ok
        assert result.violation.kind == "invariant"


class TestModelMechanics:
    def test_budget_rides_in_scalars(self):
        model = FaultyProtocolModel("fullmap", 2, faults=3)
        assert model._initial.scalars[-1] == 3

    def test_fault_actions_require_budget_and_traffic(self):
        model = FaultyProtocolModel("fullmap", 2, faults=0)
        kinds = {action[0] for action in model.enabled_actions(model._initial)}
        assert "drop" not in kinds and "dup" not in kinds

    def test_limitless_approx_unsupported(self):
        with pytest.raises(ValueError, match="limitless_approx"):
            FaultyProtocolModel("limitless_approx", 2, faults=1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultyProtocolModel("fullmap", 2, faults=-1)


class TestCli:
    def test_faults_flag_passes_on_hardened_fullmap(self, capsys):
        from repro.modelcheck.cli import main

        code = main(["--protocol", "fullmap", "--caches", "2", "--faults", "1"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_unhardened_flag_finds_the_deadlock(self, capsys):
        from repro.modelcheck.cli import main

        code = main(
            [
                "--protocol", "fullmap",
                "--caches", "2",
                "--faults", "1",
                "--unhardened",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "drops" in out
