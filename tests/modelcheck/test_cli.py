"""End-to-end tests of the ``repro modelcheck`` subcommand."""

from __future__ import annotations

from repro.modelcheck.cli import main


def test_list_protocols(capsys):
    assert main(["--list-protocols"]) == 0
    out = capsys.readouterr().out
    assert "fullmap" in out and "limitless" in out
    assert "limited_dropinv" in out  # mutants listed, clearly marked
    assert "broken" in out


def test_unknown_protocol_is_a_usage_error(capsys):
    assert main(["--protocol", "mesi"]) == 2
    assert "unknown protocol" in capsys.readouterr().out


def test_passing_protocol_exits_zero(capsys):
    assert main(["--protocol", "fullmap", "--caches", "2"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "all reachable states" in out


def test_failing_mutant_exits_one_and_prints_trace(capsys):
    code = main(
        ["--protocol", "limited_lostack", "--max-states", "50000"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "FAIL (deadlock)" in out
    assert "deadlock" in out and "WREQ" in out  # the full counterexample


def test_random_walk_mode(capsys):
    assert main(["--protocol", "fullmap", "--walk", "400", "--seed", "9"]) == 0
    assert "walk" in capsys.readouterr().out
