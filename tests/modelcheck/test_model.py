"""Model harness tests: abstraction round-trips and transition mechanics."""

from __future__ import annotations

import pytest

from repro.modelcheck.model import ProtocolModel


def test_initial_state_is_quiescent():
    model = ProtocolModel("fullmap", 3)
    s = model.initial_state()
    assert model.is_quiescent(s)
    assert model.state_problems(s) == []
    assert model.deadlock_problems(s) == []


def test_initial_actions_are_processor_ops_only():
    model = ProtocolModel("fullmap", 3)
    kinds = {a[0] for a in model.enabled_actions(model.initial_state())}
    assert kinds == {"load", "store"}  # nothing in flight, nothing cached


def test_load_miss_launches_rreq():
    model = ProtocolModel("fullmap", 3)
    step = model.apply(model.initial_state(), ("load", 1))
    assert step.error is None
    line_state, _, mshr = step.state.caches[1]
    assert line_state == "INVALID" and mshr is False  # open read miss
    assert ((1, 0), ((1, "RREQ", None, None),)) in step.state.channels


def test_apply_is_deterministic_and_memo_transparent():
    """The second application of (state, action) takes the memoized path;
    it must agree exactly with the first, concrete, execution."""
    model = ProtocolModel("limitless", 3)
    s = model.initial_state()
    first = model.apply(s, ("store", 1))
    again = model.apply(s, ("store", 1))
    assert first.state == again.state
    assert first.sent == again.sent


def test_full_read_write_round_trip_returns_to_quiescence():
    model = ProtocolModel("fullmap", 2)
    s = model.initial_state()
    for action in [("store", 1)]:
        s = model.apply(s, action).state
    # drive every in-flight message to completion, one head at a time
    for _ in range(16):
        delivers = [a for a in model.enabled_actions(s) if a[0] == "deliver"]
        if not delivers:
            break
        s = model.apply(s, delivers[0]).state
    assert model.is_quiescent(s)
    assert s.caches[1][:2] == ("READ_WRITE", 2)  # node 1 owns its value
    assert model.state_problems(s) == []


def test_evict_without_line_is_rejected():
    model = ProtocolModel("fullmap", 3)
    with pytest.raises(Exception):
        # not an enabled action; the harness flags the checker bug
        result = model.apply(model.initial_state(), ("evict", 1))
        if result.error is not None:  # surfaced as a step error instead
            raise AssertionError(result.error)


def test_unknown_protocol_is_rejected():
    with pytest.raises(ValueError, match="unknown protocol"):
        ProtocolModel("no_such_protocol", 3)
