"""Model-check every registered protocol.

The default tier keeps runtimes in seconds: exhaustive at N=2, bounded
BFS and a random walk at N=3.  The full N=3 exhaustive runs (minutes,
millions of states) are what `repro modelcheck` performs; gate them here
behind ``REPRO_MODELCHECK_EXHAUSTIVE=1`` for CI's slow lane.
"""

from __future__ import annotations

import os

import pytest

from repro.coherence.registry import protocol_names
from repro.modelcheck import ProtocolModel, explore, random_walk
from repro.modelcheck.model import Action
from repro.modelcheck.state import node_permutations, permute_state

PROTOCOLS = protocol_names()
EXHAUSTIVE = os.environ.get("REPRO_MODELCHECK_EXHAUSTIVE") == "1"


def _assert_clean(result):
    v = result.violation
    assert v is None, f"{v.kind}: {v.problems} via {v.actions}"


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_exhaustive_at_two_caches(protocol):
    result = explore(ProtocolModel(protocol, 2))
    _assert_clean(result)
    assert result.complete
    assert result.states > 50  # the walkable space is non-trivial


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_bounded_bfs_at_three_caches(protocol):
    _assert_clean(explore(ProtocolModel(protocol, 3), max_states=2500))


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_random_walk_at_four_caches(protocol):
    result = random_walk(ProtocolModel(protocol, 4), steps=1000, seed=3)
    _assert_clean(result)
    assert result.transitions == 1000  # never ran out of enabled actions


# ----------------------------------------------------------------------
# Symmetry-reduction soundness: the reduction is only valid if every
# transition commutes with a permutation of the non-home nodes.  Check
# that equation directly over a BFS prefix — this is the proof obligation
# behind ModelSpec.symmetric (including the limited/1-pointer special
# case, where the fifo victim choice is forced).
# ----------------------------------------------------------------------


def _permute_action(action: Action, perm) -> Action:
    if action[0] == "deliver":
        return ("deliver", perm[action[1]], perm[action[2]])
    if action[0] == "trap":
        return action
    return (action[0], perm[action[1]])


SYMMETRIC = [p for p in PROTOCOLS if ProtocolModel(p, 3).symmetric]


def test_limited_is_symmetric_with_one_pointer():
    assert "limited" in SYMMETRIC
    assert not ProtocolModel("limited", 3, pointers=2).symmetric


@pytest.mark.parametrize("protocol", SYMMETRIC)
def test_transitions_commute_with_node_permutation(protocol):
    model = ProtocolModel(protocol, 3)
    perm = node_permutations(3)[1]  # the one non-identity choice at N=3
    frontier = [model.initial_state()]
    seen = set()
    while frontier and len(seen) < 300:
        state = frontier.pop()
        key = model.key(state)
        if key in seen:
            continue
        seen.add(key)
        twin = permute_state(state, perm)
        for action in model.enabled_actions(state):
            direct = model.apply(state, action)
            mirror = model.apply(twin, _permute_action(action, perm))
            assert direct.error is None and mirror.error is None
            assert permute_state(direct.state, perm) == mirror.state, (
                f"{protocol}: {action} does not commute with {perm}"
            )
            frontier.append(direct.state)


# ----------------------------------------------------------------------
# The slow lane: full N=3 exhaustive verification (what the acceptance
# run `repro modelcheck` does), plus a pinned state count so quotient
# regressions — a canonicalization bug doubling the space, or an unsound
# reduction shrinking it — are caught exactly.
# ----------------------------------------------------------------------


@pytest.mark.skipif(not EXHAUSTIVE, reason="set REPRO_MODELCHECK_EXHAUSTIVE=1")
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_exhaustive_at_three_caches(protocol):
    if protocol == "trap_always":
        # Diverting every request pushes N=3 past 3M states (see
        # docs/PROTOCOL.md); sweep a capped prefix instead — still a
        # breadth-first audit of the 200k shallowest states.
        _assert_clean(explore(ProtocolModel(protocol, 3), max_states=200_000))
        return
    result = explore(ProtocolModel(protocol, 3), max_states=1_000_000)
    _assert_clean(result)
    assert result.complete


@pytest.mark.skipif(not EXHAUSTIVE, reason="set REPRO_MODELCHECK_EXHAUSTIVE=1")
def test_fullmap_state_space_is_pinned():
    result = explore(ProtocolModel("fullmap", 3))
    assert (result.states, result.transitions) == (130946, 566417)
