"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig
from repro.mem.address import AddressSpace
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(max_cycles=10_000_000)


@pytest.fixture
def space4() -> AddressSpace:
    """A small 4-node address space with Alewife-sized blocks."""
    return AddressSpace(n_nodes=4, block_bytes=16, segment_bytes=1 << 16)


def small_config(**overrides) -> AlewifeConfig:
    """A fast machine config for integration tests."""
    defaults = dict(
        n_procs=4,
        protocol="fullmap",
        pointers=2,
        ts=50,
        cache_lines=256,
        segment_bytes=1 << 16,
        seed=7,
        max_cycles=5_000_000,
    )
    defaults.update(overrides)
    return AlewifeConfig(**defaults)


@pytest.fixture
def config_factory():
    return small_config
