"""The unified profiling layer: harness, folded stacks, CLI, shim."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.machine import AlewifeConfig
from repro.profiling import ProfileReport, folded_stacks, profile_run
from repro.workloads import HotSpotWorkload


class TestFoldedStacks:
    def test_dominant_caller_chain(self):
        # cProfile raw stats: func -> (cc, nc, tt, ct, callers)
        main = ("app.py", 1, "main")
        work = ("app.py", 10, "work")
        leaf = ("app.py", 20, "leaf")
        raw = {
            main: (1, 1, 0.0, 3.0, {}),
            work: (1, 1, 1.0, 3.0, {main: (1, 1, 1.0, 3.0)}),
            leaf: (5, 5, 2.0, 2.0, {work: (5, 5, 2.0, 2.0)}),
        }
        lines = folded_stacks(raw)
        assert "app.py:1:main;app.py:10:work;app.py:20:leaf 2000000" in lines
        assert "app.py:1:main;app.py:10:work 1000000" in lines
        # main has tt == 0: no line of its own
        assert not any(line.startswith("app.py:1:main ") for line in lines)

    def test_caller_cycle_terminates(self):
        a = ("x.py", 1, "a")
        b = ("x.py", 2, "b")
        raw = {
            a: (1, 1, 1.0, 2.0, {b: (1, 1, 1.0, 2.0)}),
            b: (1, 1, 0.5, 2.0, {a: (1, 1, 0.5, 2.0)}),
        }
        lines = folded_stacks(raw)  # must not loop forever
        assert len(lines) == 2


def _small_config(**overrides) -> AlewifeConfig:
    defaults = dict(n_procs=8, protocol="limitless", pointers=2, ts=50)
    defaults.update(overrides)
    return AlewifeConfig(**defaults)


class TestProfileRun:
    def test_report_contents(self):
        report = profile_run(
            _small_config(),
            HotSpotWorkload(rounds=3),
            top=5,
            alloc_top=3,
            folded=True,
            worker_sets=True,
        )
        assert isinstance(report, ProfileReport)
        assert report.stats.cycles > 0
        assert report.events_per_sec > 0
        assert len(report.hot) == 5
        assert report.allocations  # tracemalloc saw the run
        att = report.attribution
        assert att["cycle_budget"] == report.stats.cycles * 8
        assert 0 < att["cpu_busy_cycles"] <= att["cycle_budget"]
        assert report.pool["enabled"] == 1
        assert report.pool["recycled"] > 0
        assert report.folded and all(" " in line for line in report.folded)
        assert report.worker_sets  # the hot block overflowed 2 pointers
        rendered = report.render()
        assert "cycle attribution" in rendered
        assert "packet pool" in rendered
        json.dumps(report.to_dict())  # must be serializable

    def test_pool_off_profile(self):
        report = profile_run(
            _small_config(packet_pool=False),
            HotSpotWorkload(rounds=2),
            alloc_top=0,
        )
        assert report.pool["enabled"] == 0
        assert report.pool["recycled"] == 0
        assert report.allocations == []


class TestProfileCli:
    def test_subcommand_smoke(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        rc = cli_main(
            [
                "profile",
                "--workload",
                "hotspot",
                "--procs",
                "8",
                "--iterations",
                "2",
                "--top",
                "4",
                "--alloc-top",
                "0",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "cycle attribution" in printed
        assert "hot function" in printed
        report = json.loads(out.read_text())
        assert report["events_per_sec"] > 0
        assert report["cycle_attribution"]["simulated_cycles"] == report["cycles"]

    def test_help_lists_profile(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["--help"])
        assert "profile" in capsys.readouterr().out


class TestDeprecatedShim:
    def test_extensions_profiling_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.extensions.profiling", None)
        with pytest.warns(DeprecationWarning, match="repro.profiling"):
            shim = importlib.import_module("repro.extensions.profiling")
        from repro.profiling import MemoryProfiler, profile_blocks

        assert shim.MemoryProfiler is MemoryProfiler
        assert shim.profile_blocks is profile_blocks
