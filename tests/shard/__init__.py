"""Sharded-simulation tests."""
