"""Shard-equivalence goldens: the determinism contract of `--shards`.

A staged-fabric machine must produce bit-identical results no matter how
it is partitioned: serial (one machine, no shard driver), the in-process
window driver at K=2 and K=4, and the forked multi-process driver.  The
pinned golden numbers also protect the staged fabric itself from
accidental drift — they play the same role the atomic-fabric goldens in
``tests/experiments`` play for `--shards 1`.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig
from repro.machine.machine import AlewifeMachine
from repro.sim.shard import ShardPlan, _run_forked, _run_inprocess
from repro.workloads import MultigridWorkload, WeatherWorkload

#: staged-fabric goldens at 16 processors (cycles, traps, packets)
GOLDENS = {
    ("weather", "limitless"): (4273, 13, 2466),
    ("weather", "fullmap"): (4004, 0, 2480),
    ("weather", "limited"): (5105, 0, 3496),
    ("multigrid", "limitless"): (3859, 10, 2728),
    ("multigrid", "fullmap"): (3566, 0, 2700),
    ("multigrid", "limited"): (3500, 0, 2712),
}

_WORKLOADS = {
    "weather": WeatherWorkload,
    "multigrid": MultigridWorkload,
}

_serial_cache: dict[tuple, tuple] = {}


def _config(workload, protocol, **overrides):
    kwargs = dict(n_procs=16, protocol=protocol, fabric="staged")
    if protocol in ("limitless", "limited"):
        kwargs["pointers"] = 4
    if protocol == "limitless":
        kwargs["ts"] = 50
    kwargs.update(overrides)
    return AlewifeConfig(**kwargs)


def _fingerprint(stats):
    """Everything a run reports, minus wall-clock artifacts."""
    return (
        stats.cycles,
        stats.traps_taken,
        stats.trap_cycles,
        stats.utilization,
        stats.mean_miss_latency,
        tuple(stats.per_proc_finish),
        stats.network.packets,
        stats.network.words,
        stats.network.hops,
        stats.network.total_latency,
        stats.network.contention_cycles,
        tuple(sorted(stats.network.per_opcode.items())),
        tuple(sorted(stats.counters.as_dict().items())),
        tuple(stats.worker_sets.as_sorted_items()),
    )


def _serial_fingerprint(workload, protocol, **overrides):
    key = (workload, protocol, tuple(sorted(overrides.items())))
    if key not in _serial_cache:
        config = _config(workload, protocol, **overrides)
        stats = AlewifeMachine(config).run(_WORKLOADS[workload]())
        _serial_cache[key] = _fingerprint(stats)
    return _serial_cache[key]


class TestStagedGoldens:
    @pytest.mark.parametrize("workload,protocol", sorted(GOLDENS))
    def test_staged_serial_matches_golden(self, workload, protocol):
        fp = _serial_fingerprint(workload, protocol)
        assert (fp[0], fp[1], fp[6]) == GOLDENS[(workload, protocol)]


class TestShardEquivalence:
    @pytest.mark.parametrize("workload,protocol", sorted(GOLDENS))
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_run_is_bit_identical_to_serial(
        self, workload, protocol, shards
    ):
        config = _config(workload, protocol, shards=shards)
        stats = _run_inprocess(config, _WORKLOADS[workload](), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(workload, protocol)
        assert stats.shard_meta["shards"] == shards

    @pytest.mark.parametrize("shards", [2, 4])
    def test_forked_driver_matches_in_process_driver(self, shards):
        config = _config("weather", "limitless", shards=shards)
        forked = _run_forked(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(forked) == _serial_fingerprint("weather", "limitless")
        assert forked.shard_meta["workers"] == shards
        # The batched-slab path actually serialized something.
        if forked.shard_meta["handoffs"]:
            assert forked.shard_meta["flushes"] > 0
            assert forked.shard_meta["bytes"] > 0

    @pytest.mark.parametrize("shards", [2, 4])
    def test_conservative_lookahead_is_bit_identical(self, shards):
        config = _config(
            "weather", "limitless", shards=shards,
            shard_lookahead="conservative",
        )
        stats = _run_inprocess(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint("weather", "limitless")

    def test_run_experiment_dispatches_to_shard_driver(self):
        from repro.machine import run_experiment

        config = _config("weather", "fullmap", shards=4)
        stats = run_experiment(config, WeatherWorkload(), shard_workers=1)
        assert _fingerprint(stats) == _serial_fingerprint("weather", "fullmap")
        meta = stats.shard_meta
        assert meta["shards"] == 4
        assert meta["workers"] == 1
        assert meta["windows"] > 0
        assert len(meta["per_shard"]) == 4
        per_shard = meta["per_shard"]
        assert meta["handoffs"] == sum(m["handoffs_out"] for m in per_shard)
        # Every handoff sent is a handoff received somewhere.
        assert meta["handoffs"] == sum(m["handoffs_in"] for m in per_shard)
        # The in-process driver exchanges in memory: no serialization.
        assert meta["bytes"] == 0
        assert meta["flushes"] == 0


class TestShardEquivalenceUnderFaults:
    """The staged fault gate must also be partition-invariant."""

    FAULTS = dict(
        fault_drop_rate=0.005,
        fault_delay_rate=0.01,
        fault_stall_rate=0.02,
    )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_faulty_run_is_bit_identical_to_serial(self, shards):
        config = _config("weather", "limitless", shards=shards, **self.FAULTS)
        stats = _run_inprocess(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(
            "weather", "limitless", **self.FAULTS
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_faulty_forked_driver_matches_serial(self, shards):
        config = _config("weather", "limitless", shards=shards, **self.FAULTS)
        stats = _run_forked(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(
            "weather", "limitless", **self.FAULTS
        )


class TestEightWayEquivalence:
    """K=8 needs eight mesh rows, i.e. a 64-processor machine."""

    _cache: dict[tuple, tuple] = {}

    FAULTS = dict(fault_drop_rate=0.005, fault_delay_rate=0.01)

    def _serial64(self, **overrides):
        key = tuple(sorted(overrides.items()))
        if key not in self._cache:
            config = _config("weather", "limitless", n_procs=64, **overrides)
            stats = AlewifeMachine(config).run(WeatherWorkload())
            self._cache[key] = _fingerprint(stats)
        return self._cache[key]

    def test_inprocess_eight_shards(self):
        config = _config("weather", "limitless", n_procs=64, shards=8)
        plan = ShardPlan(config)
        assert plan.n_shards == 8
        stats = _run_inprocess(config, WeatherWorkload(), plan)
        assert _fingerprint(stats) == self._serial64()

    def test_forked_eight_shards(self):
        config = _config("weather", "limitless", n_procs=64, shards=8)
        stats = _run_forked(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == self._serial64()
        assert stats.shard_meta["workers"] == 8

    def test_forked_eight_shards_under_faults(self):
        config = _config(
            "weather", "limitless", n_procs=64, shards=8, **self.FAULTS
        )
        stats = _run_forked(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == self._serial64(**self.FAULTS)


class TestIdealTopologyEquivalence:
    def test_ideal_network_shards_by_id_range(self):
        config = _config("weather", "limitless", shards=4, topology="ideal")
        stats = _run_inprocess(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(
            "weather", "limitless", topology="ideal"
        )
