"""Shard-equivalence goldens: the determinism contract of `--shards`.

A staged-fabric machine must produce bit-identical results no matter how
it is partitioned: serial (one machine, no shard driver), the in-process
window driver at K=2 and K=4, and the forked multi-process driver.  The
pinned golden numbers also protect the staged fabric itself from
accidental drift — they play the same role the atomic-fabric goldens in
``tests/experiments`` play for `--shards 1`.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig
from repro.machine.machine import AlewifeMachine
from repro.sim.shard import ShardPlan, _run_forked, _run_inprocess
from repro.workloads import MultigridWorkload, WeatherWorkload

#: staged-fabric goldens at 16 processors (cycles, traps, packets)
GOLDENS = {
    ("weather", "limitless"): (4273, 13, 2466),
    ("weather", "fullmap"): (4004, 0, 2480),
    ("weather", "limited"): (5105, 0, 3496),
    ("multigrid", "limitless"): (3859, 10, 2728),
    ("multigrid", "fullmap"): (3566, 0, 2700),
    ("multigrid", "limited"): (3500, 0, 2712),
}

_WORKLOADS = {
    "weather": WeatherWorkload,
    "multigrid": MultigridWorkload,
}

_serial_cache: dict[tuple, tuple] = {}


def _config(workload, protocol, **overrides):
    kwargs = dict(n_procs=16, protocol=protocol, fabric="staged")
    if protocol in ("limitless", "limited"):
        kwargs["pointers"] = 4
    if protocol == "limitless":
        kwargs["ts"] = 50
    kwargs.update(overrides)
    return AlewifeConfig(**kwargs)


def _fingerprint(stats):
    """Everything a run reports, minus wall-clock artifacts."""
    return (
        stats.cycles,
        stats.traps_taken,
        stats.trap_cycles,
        stats.utilization,
        stats.mean_miss_latency,
        tuple(stats.per_proc_finish),
        stats.network.packets,
        stats.network.words,
        stats.network.hops,
        stats.network.total_latency,
        stats.network.contention_cycles,
        tuple(sorted(stats.network.per_opcode.items())),
        tuple(sorted(stats.counters.as_dict().items())),
        tuple(stats.worker_sets.as_sorted_items()),
    )


def _serial_fingerprint(workload, protocol, **overrides):
    key = (workload, protocol, tuple(sorted(overrides.items())))
    if key not in _serial_cache:
        config = _config(workload, protocol, **overrides)
        stats = AlewifeMachine(config).run(_WORKLOADS[workload]())
        _serial_cache[key] = _fingerprint(stats)
    return _serial_cache[key]


class TestStagedGoldens:
    @pytest.mark.parametrize("workload,protocol", sorted(GOLDENS))
    def test_staged_serial_matches_golden(self, workload, protocol):
        fp = _serial_fingerprint(workload, protocol)
        assert (fp[0], fp[1], fp[6]) == GOLDENS[(workload, protocol)]


class TestShardEquivalence:
    @pytest.mark.parametrize("workload,protocol", sorted(GOLDENS))
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_run_is_bit_identical_to_serial(
        self, workload, protocol, shards
    ):
        config = _config(workload, protocol, shards=shards)
        stats = _run_inprocess(config, _WORKLOADS[workload](), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(workload, protocol)
        assert stats.shard_meta["shards"] == shards

    def test_forked_driver_matches_in_process_driver(self):
        config = _config("weather", "limitless", shards=2)
        forked = _run_forked(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(forked) == _serial_fingerprint("weather", "limitless")
        assert forked.shard_meta["workers"] == 2

    def test_run_experiment_dispatches_to_shard_driver(self):
        from repro.machine import run_experiment

        config = _config("weather", "fullmap", shards=4)
        stats = run_experiment(config, WeatherWorkload(), shard_workers=1)
        assert _fingerprint(stats) == _serial_fingerprint("weather", "fullmap")
        assert stats.shard_meta == {
            "shards": 4,
            "workers": 1,
            "windows": stats.shard_meta["windows"],
            "handoffs": stats.shard_meta["handoffs"],
        }


class TestShardEquivalenceUnderFaults:
    """The staged fault gate must also be partition-invariant."""

    FAULTS = dict(
        fault_drop_rate=0.005,
        fault_delay_rate=0.01,
        fault_stall_rate=0.02,
    )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_faulty_run_is_bit_identical_to_serial(self, shards):
        config = _config("weather", "limitless", shards=shards, **self.FAULTS)
        stats = _run_inprocess(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(
            "weather", "limitless", **self.FAULTS
        )

    def test_faulty_forked_driver_matches_serial(self):
        config = _config("weather", "limitless", shards=2, **self.FAULTS)
        stats = _run_forked(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(
            "weather", "limitless", **self.FAULTS
        )


class TestIdealTopologyEquivalence:
    def test_ideal_network_shards_by_id_range(self):
        config = _config("weather", "limitless", shards=4, topology="ideal")
        stats = _run_inprocess(config, WeatherWorkload(), ShardPlan(config))
        assert _fingerprint(stats) == _serial_fingerprint(
            "weather", "limitless", topology="ideal"
        )
