"""Forked-shard failure handling: worker death, stalls, and recovery.

Real processes under real signals.  The scenarios here are the ones a
long campaign actually meets: a worker SIGKILLed mid-window (OOM killer,
chaos campaign), and a worker wedged without dying (SIGSTOP stands in
for a livelocked peer).  The parent must fail fast with a diagnosis that
names the cause, unwind its process tree, and the run must be
recoverable through the checkpoint layer.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.recover import (
    CheckpointInterrupted,
    latest_snapshot,
    resume_run,
    run_with_checkpoints,
)
from repro.sim.kernel import SimulationError
from repro.sweep.spec import WorkloadSpec
from repro.workloads import WeatherWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="forked shard workers require fork",
)

SPEC = WorkloadSpec("weather", {"iterations": 8})


def _config(**overrides) -> AlewifeConfig:
    # Big enough that a forked run spans ~1s of wall clock: plenty of
    # window to deliver a signal while shard workers are mid-window.
    base = dict(
        n_procs=64, protocol="limitless", pointers=4, ts=50, shards=2
    )
    base.update(overrides)
    return AlewifeConfig(**base)


def _start_forked_run(config: AlewifeConfig):
    """Launch a forked sharded run on a thread; return (thread, result, workers)."""
    result: dict = {}

    def target() -> None:
        try:
            result["stats"] = run_experiment(
                config, WeatherWorkload(iterations=8)
            )
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            result["error"] = exc

    before = set(multiprocessing.active_children())
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    workers: list = []
    while time.monotonic() < deadline:
        workers = [
            p for p in multiprocessing.active_children() if p not in before
        ]
        if len(workers) >= config.shards:
            break
        time.sleep(0.01)
    return thread, result, workers


def test_heartbeat_knob_validated():
    with pytest.raises(ValueError, match="shard_heartbeat_s"):
        _config(shard_heartbeat_s=0)
    with pytest.raises(ValueError, match="shard_heartbeat_s"):
        _config(shard_heartbeat_s=-1.0)


def test_sigkilled_worker_is_detected_and_named(tmp_path):
    """Parent notices a dead worker, names the signal, unwinds cleanly —
    and the interrupted experiment is recoverable via checkpoints."""
    config = _config(shard_heartbeat_s=0.5)
    thread, result, workers = _start_forked_run(config)
    assert len(workers) == config.shards, "workers never appeared"
    time.sleep(0.3)  # past machine build, into the window loop
    os.kill(workers[0].pid, signal.SIGKILL)
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "parent failed to unwind"

    error = result.get("error")
    assert isinstance(error, SimulationError), result
    assert "died" in str(error) and "killed by SIGKILL" in str(error)
    # Clean unwind: no orphaned shard workers.
    for proc in workers:
        proc.join(timeout=10.0)
        assert not proc.is_alive()

    # Recovery path: re-run the same experiment under checkpoints,
    # interrupt it, and resume — the result matches the plain golden.
    golden = run_experiment(config, SPEC.build(), shard_workers=1)
    with pytest.raises(CheckpointInterrupted):
        run_with_checkpoints(
            config, SPEC, every=2000, out_dir=tmp_path, stop_after=1
        )
    resumed = resume_run(latest_snapshot(tmp_path), every=2000)
    assert resumed.to_dict() == golden.to_dict()


def test_stalled_worker_fails_fast_with_configured_heartbeat():
    """A wedged (not dead) worker trips the heartbeat at the configured
    pace — not the old hard-coded 120s — and the error names the knob."""
    config = _config(shard_heartbeat_s=0.25)
    thread, result, workers = _start_forked_run(config)
    assert len(workers) == config.shards, "workers never appeared"
    time.sleep(0.3)  # past machine build: a stop during the build phase
    # is legitimately waited out without any heartbeat deadline
    victim = workers[0]
    started = time.monotonic()
    os.kill(victim.pid, signal.SIGSTOP)
    try:
        # The *surviving* shard stalls on the stopped peer's bound and
        # must raise within the heartbeat, long before 120s.
        time.sleep(1.0)
    finally:
        # The stopped worker must resume to observe the poisoned sync
        # state and abort, letting the parent gather every reply.
        os.kill(victim.pid, signal.SIGCONT)
    thread.join(timeout=30.0)
    elapsed = time.monotonic() - started
    assert not thread.is_alive(), "parent failed to unwind"

    error = result.get("error")
    assert isinstance(error, SimulationError), result
    assert "sync stalled" in str(error)
    assert "shard_heartbeat_s=0.25" in str(error)
    assert elapsed < 20.0, f"stall detection took {elapsed:.1f}s"
    for proc in workers:
        proc.join(timeout=10.0)
        assert not proc.is_alive()
