"""Unit tests for the shard partition plan and the staged fabric's
cross-shard plumbing (outbox routing, handoffs, lookahead bounds)."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig
from repro.network.fabric import StagedWormholeNetwork
from repro.network.packet import Packet
from repro.network.topology import make_topology
from repro.sim.kernel import Simulator
from repro.sim.shard import ShardPlan


class TestShardPlan:
    def test_mesh_splits_into_row_bands(self):
        plan = ShardPlan(AlewifeConfig(n_procs=16, shards=2))
        # 4x4 mesh: rows 0-1 -> shard 0, rows 2-3 -> shard 1.
        assert [plan.shard_of(n) for n in range(16)] == [0] * 8 + [1] * 8
        assert plan.owned(0) == list(range(8))
        assert plan.owned(1) == list(range(8, 16))

    def test_every_shard_owns_a_contiguous_nonempty_range(self):
        for n, k in [(16, 2), (16, 4), (64, 4), (64, 8), (4, 2)]:
            plan = ShardPlan(AlewifeConfig(n_procs=n, shards=k))
            seen = [plan.shard_of(node) for node in range(n)]
            assert seen == sorted(seen)  # contiguous, nondecreasing
            assert set(seen) == set(range(plan.n_shards))
            assert sorted(x for s in range(plan.n_shards) for x in plan.owned(s)) == list(range(n))

    def test_shards_clamped_to_mesh_rows(self):
        # A 4x4 mesh has 4 rows; asking for 8 shards yields 4.
        plan = ShardPlan(AlewifeConfig(n_procs=16, shards=8))
        assert plan.n_shards == 4

    def test_ideal_topology_splits_by_id_range(self):
        plan = ShardPlan(AlewifeConfig(n_procs=12, shards=3, topology="ideal"))
        assert plan.n_shards == 3
        assert [plan.shard_of(n) for n in range(12)] == [0] * 4 + [1] * 4 + [2] * 4

    def test_atomic_fabric_refuses_sharding(self):
        with pytest.raises(ValueError, match="atomic"):
            AlewifeConfig(n_procs=16, shards=2, fabric="atomic")

    def test_omega_refuses_sharding(self):
        with pytest.raises(ValueError, match="omega"):
            AlewifeConfig(n_procs=16, shards=2, topology="omega")


def _packet(src, dst):
    return Packet(opcode="RREQ", src=src, dst=dst, address=0)


class TestStagedCrossShard:
    """A 4x4 mesh split into two row bands: nodes 0-7 vs 8-15."""

    def _network(self, shard_id):
        sim = Simulator()
        net = StagedWormholeNetwork(
            sim,
            make_topology("mesh", 16),
            shard_id=shard_id,
            shard_of=lambda node: 0 if node < 8 else 1,
        )
        delivered = []
        for node in range(16):
            net.attach(node, lambda p, node=node: delivered.append((node, p)))
        return sim, net, delivered

    def test_local_traffic_never_touches_the_outbox(self):
        sim, net, delivered = self._network(0)
        net.send(_packet(0, 5))
        sim.run()
        assert [n for n, _ in delivered] == [5]
        assert net.take_outbox() == []

    def test_cross_band_traffic_lands_in_the_outbox(self):
        sim, net, delivered = self._network(0)
        net.send(_packet(0, 12))  # must cross into the other band
        bound_before = net.cross_bound()
        sim.run()
        assert delivered == []
        outbox = net.take_outbox()
        assert len(outbox) == 1
        dest_shard, handoff = outbox[0]
        assert dest_shard == 1
        # A window-protocol invariant: traffic generated inside a window
        # never targets a time before the bound published at its start.
        assert handoff[2] >= bound_before

    def test_handoff_resumes_on_the_receiving_shard(self):
        sim0, net0, _ = self._network(0)
        net0.send(_packet(0, 12))
        sim0.run()
        ((_, handoff),) = net0.take_outbox()

        sim1, net1, delivered1 = self._network(1)
        sim1.run_until(handoff[2])
        net1.receive_handoff(handoff)
        sim1.run()
        assert [n for n, _ in delivered1] == [12]
        assert net1.handoffs_in == 1

    def test_cross_bound_is_none_when_drained(self):
        sim, net, _ = self._network(0)
        assert net.cross_bound() is None
        net.send(_packet(0, 1))
        assert net.cross_bound() is not None
        sim.run()
        assert net.cross_bound() is None

    def test_cross_bound_is_conservative(self):
        sim, net, _ = self._network(0)
        net.send(_packet(4, 12))  # one hop south, immediately foreign
        bound = net.cross_bound()
        sim.run()
        ((_, handoff),) = net.take_outbox()
        assert bound is not None and handoff[2] >= bound
