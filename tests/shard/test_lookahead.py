"""Adaptive-lookahead soundness: distance tables, per-route floors, and a
hypothesis property that windowed co-simulation never produces a handoff
at or before a cycle the receiving shard has already executed."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fabric import StagedWormholeNetwork
from repro.network.packet import Packet
from repro.network.topology import make_topology
from repro.sim.kernel import Simulator

_NEVER = 10**9


def _packet(src, dst):
    return Packet(opcode="RREQ", src=src, dst=dst, address=0)


def _band_of(node):
    return 0 if node < 8 else 1


def _network(shard_id, shard_of=_band_of, lookahead="adaptive"):
    sim = Simulator()
    net = StagedWormholeNetwork(
        sim,
        make_topology("mesh", 16),
        shard_id=shard_id,
        shard_of=shard_of,
        lookahead=lookahead,
    )
    delivered = []
    for node in range(16):
        net.attach(
            node, lambda p, node=node: delivered.append((node, net.sim.now, p.src))
        )
    return sim, net, delivered


class TestDistanceTables:
    def test_row_band_deltas_on_a_4x4_mesh(self):
        _sim, net, _ = _network(0)
        # Shard 0 owns rows 0-1.  From row 1 the cheapest crossing is the
        # vertical link sourced *in* row 2 en route to row 3 (inj + 1 hop);
        # from row 0 the same link is one row further (inj + 2 hops).
        assert net._delta[0:4] == [3, 3, 3, 3]
        assert net._delta[4:8] == [2, 2, 2, 2]

    def test_deltas_never_below_the_conservative_constant(self):
        for shard_id in (0, 1):
            _sim, net, _ = _network(shard_id)
            owned = [n for n in range(16) if _band_of(n) == shard_id]
            assert all(net._delta[n] >= net.min_cross_gen for n in owned)
            assert net._event_floor >= net.min_cross_gen

    def test_non_row_uniform_partition_falls_back_to_generic_floor(self):
        # Split by column parity: rows are not shard-uniform, so the
        # distance table must drop to the universally sound inj + hop.
        _sim, net, _ = _network(0, shard_of=lambda node: node % 2)
        assert set(net._delta) == {net.injection_latency + net.hop_latency}

    def test_every_single_send_respects_its_published_bound(self):
        # Exhaustive over all pairs: the bound computed right after a
        # send floors every handoff that send ever produces.
        for src in range(8):  # shard 0's nodes
            for dst in range(16):
                sim, net, _ = _network(0)
                net.send(_packet(src, dst))
                bound = net.cross_bound()
                sim.run()
                for _dest, handoff in net.take_outbox():
                    assert bound is not None
                    assert handoff[2] >= bound


class TestWindowedKernelSeam:
    def test_run_until_fast_path_advances_an_empty_window(self):
        sim = Simulator()
        assert sim.run_until(100) == 100
        assert sim.now == 100
        fired = []
        sim.post(250, fired.append, 1)
        assert sim.run_until(250) == 250  # half-open: 250 not executed
        assert fired == []
        sim.run_until(251)
        assert fired == [1]


def _co_simulate(k, sends, lookahead):
    """Run `sends` through K band-sharded fabrics under the window
    protocol, asserting conservatism at every exchange; return the
    delivery record."""
    shard_of = lambda node: min(k - 1, node // 4 * k // 4)
    shards = []
    delivered = []
    for shard_id in range(k):
        sim = Simulator()
        net = StagedWormholeNetwork(
            sim,
            make_topology("mesh", 16),
            shard_id=shard_id,
            shard_of=shard_of,
            lookahead=lookahead,
        )
        for node in range(16):
            if shard_of(node) == shard_id:
                net.attach(
                    node,
                    lambda p, node=node, net=net: delivered.append(
                        (node, net.sim.now, p.src)
                    ),
                )
        shards.append((sim, net))
    for time, src, dst in sends:
        sim, net = shards[shard_of(src)]
        sim.post(time, lambda net=net, s=src, d=dst: net.send(_packet(s, d)))
    rounds = 0
    while True:
        bounds = []
        for sim, net in shards:
            b = net.cross_bound()
            if b is not None:
                # Windows must strictly advance or the driver livelocks.
                assert b > sim.now
            bounds.append(_NEVER if b is None else b)
        limit = min(bounds)
        if limit >= _NEVER:
            break
        rounds += 1
        assert rounds < 100_000
        traffic = []
        for sim, net in shards:
            sim.run_until(limit)
            traffic.extend(net.take_outbox())
        for dest, handoff in traffic:
            # The conservatism property: every shard executed [.., limit),
            # so a handoff landing before `limit` would rewrite history.
            assert handoff[2] >= limit
            shards[dest][1].receive_handoff(handoff)
    return sorted(delivered)


def _reference(sends):
    """The same traffic through one unsharded staged fabric."""
    sim = Simulator()
    net = StagedWormholeNetwork(sim, make_topology("mesh", 16))
    delivered = []
    for node in range(16):
        net.attach(
            node,
            lambda p, node=node: delivered.append((node, sim.now, p.src)),
        )
    for time, src, dst in sends:
        sim.post(time, lambda s=src, d=dst: net.send(_packet(s, d)))
    sim.run()
    return sorted(delivered)


_sends = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=1,
    max_size=40,
)


class TestAdaptiveLookaheadProperty:
    @settings(max_examples=30, deadline=None)
    @given(sends=_sends)
    @pytest.mark.parametrize("k", [2, 4])
    def test_windowed_equals_serial_and_never_violates_conservatism(
        self, k, sends
    ):
        assert _co_simulate(k, sends, "adaptive") == _reference(sends)

    @settings(max_examples=10, deadline=None)
    @given(sends=_sends)
    def test_conservative_policy_holds_the_same_property(self, sends):
        assert _co_simulate(2, sends, "conservative") == _reference(sends)
