"""Property-based co-simulation: reference vs batched-ring kernel.

Two layers of lockstep comparison, both driven by hypothesis:

* **Kernel level** — random self-rescheduling event schedules run through
  :class:`~repro.sim.kernel.Simulator` and
  :class:`~repro.backend.batchsim.BatchSimulator` under identical
  ``run_until`` windows.  The firing log (cycle, event identity) and the
  per-window kernel observables ``(now, _seq, events_executed,
  pending_events)`` must match exactly: the 64-slot ring and the batched
  counter updates are pure reorderings of *work*, never of *results*,
  and the window boundaries are exactly where the shard driver and the
  checkpointer read those observables.
* **Machine level** — random small weather configurations run end to end
  on both backends under a windowed driver; the per-window observables
  and the final equivalence fingerprint must match.  This sweeps the
  fused SoA hit path, the ring-inlined deliveries, and the
  view-object cache/directory storage under schedules the committed
  goldens do not enumerate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import equivalence_fingerprint
from repro.backend.batchsim import BatchSimulator
from repro.machine import AlewifeConfig, AlewifeMachine
from repro.sim.kernel import Simulator
from repro.workloads import WeatherWorkload

# ----------------------------------------------------------------------
# Kernel level
# ----------------------------------------------------------------------

#: (start_time, chain_length, delta): event i fires at start_time, then
#: reposts itself chain_length times at +delta.  Deltas straddle the
#: 64-cycle ring horizon so both the ring and the heap paths execute.
_schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=90),
    ),
    min_size=1,
    max_size=40,
)

_windows = st.sampled_from([1, 7, 63, 64, 65, 257])


def _run_kernel(sim_class, schedule, window):
    sim = sim_class()
    log = []

    def fire(arg):
        ident, remaining, delta = arg
        log.append((sim.now, ident))
        if remaining:
            sim.post(sim.now + delta, fire, (ident, remaining - 1, delta))

    for ident, (start, chain, delta) in enumerate(schedule):
        sim.post(start, fire, (ident, chain, delta))
    trace = []
    guard = 0
    while sim.pending_events:
        guard += 1
        assert guard < 10_000
        sim.run_until(sim.now + window)
        trace.append(
            (sim.now, sim._seq, sim.events_executed, sim.pending_events)
        )
    return log, trace


class TestKernelCoSimulation:
    @settings(max_examples=40, deadline=None)
    @given(schedule=_schedules, window=_windows)
    def test_windowed_batch_kernel_matches_reference(self, schedule, window):
        ref = _run_kernel(Simulator, schedule, window)
        soa = _run_kernel(BatchSimulator, schedule, window)
        assert soa == ref

    @settings(max_examples=20, deadline=None)
    @given(schedule=_schedules)
    def test_free_running_batch_kernel_matches_reference(self, schedule):
        def free_run(sim_class):
            sim = sim_class()
            log = []

            def fire(arg):
                ident, remaining, delta = arg
                log.append((sim.now, ident))
                if remaining:
                    sim.post(sim.now + delta, fire, (ident, remaining - 1, delta))

            for ident, (start, chain, delta) in enumerate(schedule):
                sim.post(start, fire, (ident, chain, delta))
            sim.run()
            return log, sim.now, sim._seq, sim.events_executed

        assert free_run(BatchSimulator) == free_run(Simulator)


# ----------------------------------------------------------------------
# Machine level
# ----------------------------------------------------------------------

_configs = st.fixed_dictionaries(
    {
        "n_procs": st.sampled_from([4, 16]),
        "protocol": st.sampled_from(["fullmap", "limited", "limitless"]),
        "seed": st.integers(min_value=0, max_value=7),
        "iterations": st.integers(min_value=1, max_value=2),
        "window": st.sampled_from([64, 193, 1024]),
    }
)


def _trace_machine(backend, params):
    kwargs = dict(
        n_procs=params["n_procs"],
        protocol=params["protocol"],
        seed=params["seed"],
        backend=backend,
    )
    if params["protocol"] != "fullmap":
        kwargs.update(pointers=4, ts=50)
    machine = AlewifeMachine(AlewifeConfig(**kwargs))
    window = params["window"]
    trace = []

    def driver(m):
        sim = m.sim
        guard = 0
        while sim.pending_events:
            guard += 1
            assert guard < 100_000
            sim.run_until(sim.now + window)
            trace.append(
                (sim.now, sim._seq, sim.events_executed, sim.pending_events)
            )

    stats = machine.run(
        WeatherWorkload(iterations=params["iterations"]),
        audit=False,
        driver=driver,
    )
    return trace, equivalence_fingerprint(stats)


class TestMachineCoSimulation:
    @settings(max_examples=12, deadline=None)
    @given(params=_configs)
    def test_soa_machine_matches_reference_window_for_window(self, params):
        assert _trace_machine("soa", params) == _trace_machine(
            "reference", params
        )

    @settings(max_examples=12, deadline=None)
    @given(params=_configs)
    def test_native_machine_matches_reference_window_for_window(self, params):
        # Runs against the compiled kernels when the extension is built,
        # and against the soa fallback otherwise — both must co-simulate
        # with the reference machine window for window.
        assert _trace_machine("native", params) == _trace_machine(
            "reference", params
        )
