"""Adversarial reuse tests for the SoA line and directory storage.

The SoA layout recycles aggressively: one view object per cache slot,
one live memoryview per block's slab slice, one integer bitmask per
pointer set.  Every bug class here is an aliasing bug — state that
should have detached (evicted victims, packet payloads, set-algebra
results) continuing to see later writes to the recycled storage.  These
tests drive the storage the way the packet pool and the protocol
controllers do, then mutate the backing slab and assert nothing leaks
through.
"""

from __future__ import annotations

import pytest

from repro.backend.soa import PointerSet, SoaCacheArray, SoaDirectory
from repro.coherence.states import CacheState, DirState
from repro.mem.address import AddressSpace
from repro.mem.memory import BlockData


def _space():
    return AddressSpace(n_nodes=4, block_bytes=16, segment_bytes=1 << 20)


def _block_data(space, fill):
    data = BlockData(0)
    data.words = [fill + i for i in range(space.words_per_block)]
    return data


class TestCacheSlotReuse:
    def test_victim_detaches_before_slot_overwrite(self):
        space = _space()
        array = SoaCacheArray(space, 4)
        # Two blocks that collide on the same direct-mapped slot.
        a = 0x000
        b = a + 4 * space.block_bytes
        array.install(a, CacheState.READ_WRITE, _block_data(space, 100))
        line_a = array.lookup(a)
        line_a.written = True
        victim = array.install(b, CacheState.READ_ONLY, _block_data(space, 200))
        # The victim is a detached snapshot of the pre-eviction slot...
        assert victim.block == a
        assert victim.state is CacheState.READ_WRITE
        assert victim.written is True
        assert list(victim.data.words) == [100 + i for i in range(4)]
        # ...and stays frozen while the recycled slot is rewritten.
        array.lookup(b).data.words[0] = 999
        assert victim.data.words[0] == 100
        # The reference _evict invalidates the victim *after* the install;
        # on a detached snapshot that must not touch the new resident.
        victim.state = CacheState.INVALID
        assert array.lookup(b).state is CacheState.READ_ONLY

    def test_packet_payload_copy_detaches_from_the_slab(self):
        space = _space()
        array = SoaCacheArray(space, 4)
        array.install(0, CacheState.READ_ONLY, _block_data(space, 7))
        payload = array.lookup(0).data.copy()  # what outgoing packets carry
        assert isinstance(payload, BlockData)
        assert payload.words == [7, 8, 9, 10]
        array.lookup(0).data.words[1] = -1
        assert payload.words == [7, 8, 9, 10]

    def test_slot_views_are_recycled_but_track_the_live_line(self):
        space = _space()
        array = SoaCacheArray(space, 4)
        a, b = 0x000, 4 * space.block_bytes
        array.install(a, CacheState.READ_WRITE, _block_data(space, 1))
        view_a = array.lookup(a)
        array.install(b, CacheState.READ_ONLY, _block_data(space, 2))
        view_b = array.lookup(b)
        # Same recycled view object, now describing the new resident.
        assert view_a is view_b
        assert view_b.block == b
        assert view_b.state is CacheState.READ_ONLY
        assert array.lookup(a) is None

    def test_invalidate_then_reinstall_round_trip(self):
        space = _space()
        array = SoaCacheArray(space, 4)
        array.install(0, CacheState.READ_WRITE, _block_data(space, 5))
        dropped = array.invalidate(0)
        assert dropped is not None and not dropped.valid
        assert array.lookup(0) is None
        assert array.resident(array.index_of(0)) is None
        # No stale victim: the slot was invalid, not a conflicting tag.
        assert (
            array.install(0, CacheState.READ_ONLY, _block_data(space, 6))
            is None
        )
        assert array.lookup(0).written is False

    def test_valid_lines_materializes_detached_plain_words(self):
        space = _space()
        array = SoaCacheArray(space, 4)
        array.install(0, CacheState.READ_ONLY, _block_data(space, 1))
        array.install(space.block_bytes, CacheState.READ_WRITE, _block_data(space, 9))
        lines = array.valid_lines()
        assert len(lines) == 2
        assert all(type(line.data.words) is list for line in lines)
        snapshot = [list(line.data.words) for line in lines]
        array.lookup(0).data.words[0] = 12345
        assert [list(line.data.words) for line in lines] == snapshot


class TestPointerSetReuse:
    def test_set_algebra_detaches_from_the_bitmask(self):
        directory = SoaDirectory(home=0)
        entry = directory.entry(0x40)
        entry.sharers.add(1)
        entry.sharers.add(3)
        derived = entry.sharers - {1}
        assert type(derived) is set and derived == {3}
        entry.sharers.add(2)
        assert derived == {3}  # detached: later adds don't leak in

    def test_inplace_union_into_a_plain_set_must_use_update(self):
        # `plain |= PointerSet` falls back to Set.__ror__ and rebinds the
        # local to a *new* set — the aliasing trap the limitless software
        # handler hit.  update() mutates in place; this pins the contract.
        directory = SoaDirectory(home=0)
        entry = directory.entry(0x40)
        entry.sharers.add(2)
        shared_vector = set()
        alias = shared_vector
        shared_vector |= entry.sharers
        assert shared_vector == {2}
        assert alias == set() and shared_vector is not alias  # the trap
        fresh = set()
        fresh_alias = fresh
        fresh.update(entry.sharers)
        assert fresh_alias == {2} and fresh is fresh_alias

    def test_sharers_setter_reads_before_it_clears(self):
        # entry.sharers |= {x} routes the mutated live view back through
        # the setter; computing bits before assigning keeps it lossless.
        directory = SoaDirectory(home=0)
        entry = directory.entry(0x40)
        entry.sharers.add(1)
        entry.sharers |= {2}
        assert set(entry.sharers) == {1, 2}

    def test_entry_rows_share_no_state(self):
        directory = SoaDirectory(home=0)
        first = directory.entry(0x40)
        second = directory.entry(0x80)
        first.add_sharer(1)
        first.begin_transaction(2, [1, 3])
        first.state = DirState.WRITE_TRANSACTION
        assert set(second.sharers) == set()
        assert second.acks_outstanding == 0
        assert second.state is DirState.READ_ONLY
        assert second.idle() and not first.idle()
        # Same interned view object per row, fresh deque per pending use.
        assert directory.entry(0x40) is first
        first.pending.append("x")
        assert len(second.pending) == 0


class TestConstruction:
    def test_line_count_must_be_a_power_of_two(self):
        with pytest.raises(ValueError):
            SoaCacheArray(_space(), 3)

    def test_pointer_set_iterates_in_ascending_node_order(self):
        column = [0b101010]
        pointers = PointerSet(column, 0)
        assert list(pointers) == [1, 3, 5]
        assert len(pointers) == 3
        assert 3 in pointers and 0 not in pointers and "x" not in pointers
