"""Selection/fallback matrix for the compiled ``native`` backend.

The golden tier in ``test_equivalence.py`` already pins the native
backend's *results* (it parametrizes over ``backend_names()``, so the
committed SHA-256 fingerprints cover it with the extension present or
absent).  This file covers the plumbing around it: requesting ``native``
without the extension must degrade to the soa components with a recorded
reason and identical numbers, ``REPRO_NO_NUMPY`` must not interact, the
``repro run``/``repro profile`` CLIs must accept ``--backend native``,
and the serve ``/metrics`` per-backend block must report native work.

The extension import and the backend registry both cache at module /
process scope, so the environment-variable cases run in subprocesses;
the in-process fallback case patches the module attributes directly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.backend import backend_names, equivalence_fingerprint, get_backend
from repro.backend import native
from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import WeatherWorkload

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

#: one tiny scenario reused by every cross-backend identity check here
_TINY = (
    "dict(n_procs=4, protocol='limitless', pointers=2, ts=50, "
    "max_cycles=2_000_000)"
)


def _subprocess(code: str, **env_overrides: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


_FINGERPRINT_CODE = f"""
import json
from repro.backend import equivalence_fingerprint, get_backend
from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import WeatherWorkload

prints = {{}}
for backend in ("soa", "native"):
    config = AlewifeConfig(**{_TINY}, backend=backend)
    stats = run_experiment(config, WeatherWorkload(iterations=2))
    prints[backend] = equivalence_fingerprint(stats)
print(json.dumps({{
    "fingerprints": prints,
    "notes": get_backend("native").notes,
    "simulator": type(get_backend("native").make_simulator()).__name__,
}}))
"""


def test_native_is_a_registered_backend():
    assert "native" in backend_names()


def test_native_backend_always_carries_notes():
    backend = get_backend("native")
    assert backend.name == "native"
    assert backend.notes
    if native.available():
        assert "compiled kernels active" in backend.notes
    else:  # pragma: no cover - depends on build
        assert "fallback" in backend.notes


def test_requested_but_missing_falls_back_and_records_reason():
    """Extension disabled via REPRO_NATIVE=0: run proceeds on soa,
    bit-identical, with the reason in the backend notes."""
    result = _subprocess(_FINGERPRINT_CODE, REPRO_NATIVE="0")
    assert result.returncode == 0, result.stderr
    report = json.loads(result.stdout)
    assert report["fingerprints"]["native"] == report["fingerprints"]["soa"]
    assert "native extension unavailable" in report["notes"]
    assert "REPRO_NATIVE=0" in report["notes"]
    assert "soa fallback" in report["notes"]
    assert report["simulator"] == "BatchSimulator"


def test_no_numpy_does_not_perturb_native_results():
    """REPRO_NO_NUMPY only drops the soa cold-scan acceleration; the
    native backend neither needs numpy nor changes results without it."""
    result = _subprocess(_FINGERPRINT_CODE, REPRO_NO_NUMPY="1")
    assert result.returncode == 0, result.stderr
    report = json.loads(result.stdout)
    assert report["fingerprints"]["native"] == report["fingerprints"]["soa"]


def test_in_process_fallback_uses_soa_components(monkeypatch):
    """The registry consults load_status() at bundle build time."""
    import repro.backend as backend_mod
    from repro.backend.batchsim import BatchSimulator

    monkeypatch.setattr(native, "_native", None)
    monkeypatch.setattr(native, "_IMPORT_ERROR", "patched out for the test")
    monkeypatch.delitem(backend_mod._INSTANCES, "native", raising=False)
    try:
        backend = get_backend("native")
        assert "patched out for the test" in backend.notes
        sim = backend.make_simulator()
        assert type(sim) is BatchSimulator
    finally:
        # drop the patched bundle so later tests rebuild the real one
        backend_mod._INSTANCES.pop("native", None)


@pytest.mark.skipif(not native.available(), reason="extension not built")
def test_pool_off_is_bit_identical_across_backends():
    """packet_pool=False must not disturb the compiled pool/rx paths."""
    prints = {}
    for backend in ("reference", "native"):
        config = AlewifeConfig(
            n_procs=4,
            protocol="limitless",
            pointers=2,
            ts=50,
            max_cycles=2_000_000,
            packet_pool=False,
            backend=backend,
        )
        stats = run_experiment(config, WeatherWorkload(iterations=2))
        prints[backend] = equivalence_fingerprint(stats)
    assert prints["native"] == prints["reference"]


def test_cli_run_accepts_backend_native():
    result = _subprocess(
        "import sys; from repro.cli import main; "
        "sys.exit(main(['run', '--workload', 'weather', '--protocol', "
        "'fullmap', '--procs', '4', '--iterations', '1', "
        "'--backend', 'native']))"
    )
    assert result.returncode == 0, result.stderr
    assert "backend:" in result.stdout
    expected = (
        "compiled kernels active"
        if native.available()
        else "soa fallback"
    )
    assert expected in result.stdout


def test_cli_profile_accepts_backend_native():
    result = _subprocess(
        "import sys; from repro.profiling.cli import main; "
        "sys.exit(main(['--workload', 'weather', '--protocol', 'fullmap', "
        "'--procs', '4', '--iterations', '1', '--alloc-top', '0', "
        "'--top', '3', '--backend', 'native']))"
    )
    assert result.returncode == 0, result.stderr
    assert "native backend" in result.stdout
    if native.available():
        # compiled time is attributed to one labeled component instead
        # of vanishing from the cProfile tree
        assert "backend.native" in result.stdout


def test_serve_metrics_reports_native_backend_block(tmp_path):
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import SweepService
    from repro.sweep import ResultCache

    service = SweepService(
        workers=1,
        cache=ResultCache(tmp_path / "cache"),
        queue_depth=4,
        executor_factory=lambda workers: ThreadPoolExecutor(
            max_workers=workers
        ),
    )
    try:
        record = service.submit_payload(
            {
                "config": {
                    "n_procs": 4,
                    "protocol": "fullmap",
                    "max_cycles": 2_000_000,
                    "backend": "native",
                },
                "workload": {"name": "hotspot", "params": {"rounds": 2}},
            }
        )
        assert record.wait(60)
        snapshot = service.metrics_snapshot()
    finally:
        service.close()
    block = snapshot["backends"]["native"]
    assert block["points"] == 1
    assert block["cycles"] > 0
