"""Backend-equivalence golden tier.

The ``soa`` backend's contract is *bit-identical* observable behaviour:
same cycles, counters, histograms, and network statistics as the
pure-Python reference on every committed scenario.  The digests below
pin :func:`repro.backend.equivalence_fingerprint` (MachineStats minus
the backend-carrying ``config`` and the driver-only ``shard_meta``) for
both backends at once — a mismatch on either backend means simulated
behaviour changed, exactly the regression the sweep result cache and the
recovery digests cannot tolerate.

The matrix deliberately crosses the axes where the SoA layout differs
most from the reference object model: all three protocols (fullmap's
dense bitmasks, dir4nb's pointer eviction, limitless's software
extension with its PointerSet-into-set merges), a second workload shape,
nonzero fault injection (RNG interleaving), and the K=2 windowed shard
driver (staged fabric + harvest merge).
"""

from __future__ import annotations

import pytest

from repro import AlewifeConfig, run_experiment
from repro.backend import backend_names, equivalence_fingerprint
from repro.recover.checkpoint import run_with_checkpoints
from repro.recover.snapshot import list_snapshots, read_snapshot
from repro.sweep.spec import WorkloadSpec
from repro.workloads import MultigridWorkload, WeatherWorkload

#: scenario -> (config kwargs sans backend, workload factory)
SCENARIOS = {
    "weather-fullmap-p16": (
        dict(n_procs=16, protocol="fullmap"),
        lambda: WeatherWorkload(iterations=3),
    ),
    "weather-limited4-p16": (
        dict(n_procs=16, protocol="limited", pointers=4),
        lambda: WeatherWorkload(iterations=3),
    ),
    "weather-limitless4-p16": (
        dict(n_procs=16, protocol="limitless", pointers=4, ts=50),
        lambda: WeatherWorkload(iterations=3),
    ),
    "multigrid-limitless4-p16": (
        dict(n_procs=16, protocol="limitless", pointers=4, ts=50),
        lambda: MultigridWorkload(levels=(2, 2), points_per_proc=16),
    ),
    "weather-limitless4-faults-p16": (
        dict(
            n_procs=16,
            protocol="limitless",
            pointers=4,
            ts=50,
            fault_drop_rate=0.01,
            fault_delay_rate=0.01,
        ),
        lambda: WeatherWorkload(iterations=3),
    ),
    "weather-fullmap-p16-k2": (
        dict(n_procs=16, protocol="fullmap", shards=2),
        lambda: WeatherWorkload(iterations=3),
    ),
}

#: digests recorded from the reference backend at the PR that introduced
#: the backend seam; the soa backend must reproduce them bit-for-bit.
GOLDEN_FINGERPRINTS = {
    "weather-fullmap-p16": (
        "325d0e3159c9544b96299b01eb89dd8c05c32501876fe6ef92a9648b6a7041d7"
    ),
    "weather-limited4-p16": (
        "23205a91337c3e36f3b918569bcbf42bc95a29f476889ecf84541af024fe4dfa"
    ),
    "weather-limitless4-p16": (
        "b19f01406ee72f8cee763fa06a4332c34a67b6bf6bf82eca2e89f83548a1e0a9"
    ),
    "multigrid-limitless4-p16": (
        "d60ca958e0f2af02ff1980be09102540106113be82aeb2d880f9dc2f9ce135bb"
    ),
    "weather-limitless4-faults-p16": (
        "e3609960d35c3f6d3ac31b0c1d641611d1659235899f098a89433750b2f17295"
    ),
    "weather-fullmap-p16-k2": (
        "f8cafc692c8e3fe176397d976925dd922d0e0f85aa7dec002607c9f3f0e77857"
    ),
}


def _run(name: str, backend: str):
    config_kw, workload_factory = SCENARIOS[name]
    config = AlewifeConfig(**config_kw, backend=backend)
    kwargs = {"shard_workers": 1} if config.shards > 1 else {}
    return run_experiment(config, workload_factory(), **kwargs)


@pytest.mark.parametrize("backend", backend_names())
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_equivalence_fingerprints(name, backend):
    stats = _run(name, backend)
    assert equivalence_fingerprint(stats) == GOLDEN_FINGERPRINTS[name], (
        f"{name} on the {backend} backend no longer matches the committed "
        f"equivalence golden — a layout or kernel change altered observable "
        f"simulation results"
    )


class TestCheckpointsAcrossBackends:
    """Recovery digests are backend-independent state, not layout state."""

    def _checkpoints(self, backend, tmp_path):
        out = tmp_path / backend
        config = AlewifeConfig(n_procs=16, protocol="fullmap", backend=backend)
        stats = run_with_checkpoints(
            config,
            WorkloadSpec("weather", {"iterations": 6}),
            every=500,
            out_dir=out,
        )
        snaps = [read_snapshot(p) for p in list_snapshots(out)]
        assert snaps, "run too short to produce checkpoints"
        return stats, snaps

    def test_digests_match_and_soa_resumes_from_reference_timeline(
        self, tmp_path
    ):
        ref_stats, ref_snaps = self._checkpoints("reference", tmp_path)
        soa_stats, soa_snaps = self._checkpoints("soa", tmp_path)
        assert equivalence_fingerprint(ref_stats) == equivalence_fingerprint(
            soa_stats
        )
        assert [s.cycle for s in ref_snaps] == [s.cycle for s in soa_snaps]
        # state_digest covers machine state only (not config), so the two
        # backends must agree snapshot-for-snapshot.
        assert [s.digest for s in ref_snaps] == [s.digest for s in soa_snaps]

    def test_soa_resume_reproduces_the_full_run(self, tmp_path):
        from repro.recover.checkpoint import resume_run

        full_stats, snaps = self._checkpoints("soa", tmp_path)
        middle = snaps[len(snaps) // 2]
        path = _snapshot_path(tmp_path / "soa", middle.cycle)
        stats = resume_run(path)
        assert equivalence_fingerprint(stats) == equivalence_fingerprint(
            full_stats
        )

    def test_native_digests_match_reference_timeline(self, tmp_path):
        # Whether the extension is built (compiled kernels) or not (soa
        # fallback), backend="native" must produce the reference
        # snapshot timeline digest-for-digest.
        ref_stats, ref_snaps = self._checkpoints("reference", tmp_path)
        nat_stats, nat_snaps = self._checkpoints("native", tmp_path)
        assert equivalence_fingerprint(ref_stats) == equivalence_fingerprint(
            nat_stats
        )
        assert [s.cycle for s in ref_snaps] == [s.cycle for s in nat_snaps]
        assert [s.digest for s in ref_snaps] == [s.digest for s in nat_snaps]

    def test_native_resume_reproduces_the_full_run(self, tmp_path):
        from repro.recover.checkpoint import resume_run

        full_stats, snaps = self._checkpoints("native", tmp_path)
        middle = snaps[len(snaps) // 2]
        path = _snapshot_path(tmp_path / "native", middle.cycle)
        stats = resume_run(path)
        assert equivalence_fingerprint(stats) == equivalence_fingerprint(
            full_stats
        )


def _snapshot_path(directory, cycle):
    for path in list_snapshots(directory):
        if read_snapshot(path).cycle == cycle:
            return path
    raise AssertionError(f"no snapshot at cycle {cycle} in {directory}")
