"""Tests for the §3.1 analytical model and memory-overhead model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.model.analytical import (
    chained_write_latency,
    directory_overhead,
    fanout_write_latency,
    limitless_remote_latency,
    overflow_fraction_for_slowdown,
    slowdown_vs_fullmap,
    software_only_viability,
)


class TestLatencyModel:
    def test_papers_worked_example(self):
        """Th=35, Ts=100, m=3% -> remote accesses 10% slower (§3.1)."""
        slowdown = slowdown_vs_fullmap(th=35, ts=100, m=0.03)
        assert slowdown == pytest.approx(0.10, abs=0.015)

    def test_zero_overflow_matches_fullmap(self):
        assert limitless_remote_latency(35, 100, 0.0) == 35

    def test_all_overflow_adds_full_ts(self):
        assert limitless_remote_latency(35, 100, 1.0) == 135

    def test_inverse_relation(self):
        m = overflow_fraction_for_slowdown(th=35, ts=100, slowdown=0.10)
        assert m == pytest.approx(0.035, abs=1e-9)
        assert slowdown_vs_fullmap(35, 100, m) == pytest.approx(0.10)

    def test_software_only_migration_path(self):
        """§3.1: when Th >> Ts, even m=1 becomes viable."""
        today = software_only_viability(th=35, ts=100)
        future = software_only_viability(th=1000, ts=50)
        assert today > 1.0      # all-software hurts on a 64-node Alewife
        assert future < 0.10    # but is <10% when networks dominate

    def test_input_validation(self):
        with pytest.raises(ValueError):
            limitless_remote_latency(35, 100, 1.5)
        with pytest.raises(ValueError):
            limitless_remote_latency(-1, 100, 0.5)
        with pytest.raises(ValueError):
            slowdown_vs_fullmap(0, 100, 0.5)
        with pytest.raises(ValueError):
            overflow_fraction_for_slowdown(35, 0, 0.1)

    @given(
        th=st.floats(min_value=1, max_value=1e4),
        ts=st.floats(min_value=0, max_value=1e4),
        m=st.floats(min_value=0, max_value=1),
    )
    def test_latency_monotone_in_m(self, th, ts, m):
        assert limitless_remote_latency(th, ts, m) >= th


class TestMemoryOverhead:
    def test_fullmap_grows_quadratically(self):
        """§1: full-map directory size grows as O(N^2)."""
        small = directory_overhead("fullmap", 64)
        big = directory_overhead("fullmap", 256)
        # 4x the nodes -> 4x the blocks AND 4x pointer bits/entry ~ 16x+
        assert big.directory_bits / small.directory_bits > 12

    def test_limitless_grows_linearly(self):
        small = directory_overhead("limitless", 64)
        big = directory_overhead("limitless", 256)
        ratio = big.directory_bits / small.directory_bits
        assert 4 <= ratio <= 6  # O(N) blocks x O(log N) pointer width

    def test_limitless_beats_fullmap_at_scale(self):
        for n in (64, 256, 1024):
            full = directory_overhead("fullmap", n)
            lless = directory_overhead("limitless", n)
            assert lless.directory_bits < full.directory_bits

    def test_limitless_overhead_close_to_limited(self):
        limited = directory_overhead("limited", 256)
        limitless = directory_overhead("limitless", 256)
        # the extra meta bits + local bit cost a few percent, not a factor
        assert limitless.directory_bits / limited.directory_bits < 1.2

    def test_chained_linear(self):
        small = directory_overhead("chained", 64)
        big = directory_overhead("chained", 256)
        assert big.directory_bits / small.directory_bits < 6

    def test_overhead_ratio_sensible(self):
        full = directory_overhead("fullmap", 64)
        # 64 presence bits per 16-byte (128-bit) block: ~52% overhead
        assert 0.4 < full.overhead_ratio < 0.6

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            directory_overhead("snooping", 64)


class TestWriteLatencyModels:
    def test_chained_linear_in_worker_set(self):
        assert chained_write_latency(8, 40) == 320
        assert chained_write_latency(0, 40) == 0

    def test_fanout_constant(self):
        assert fanout_write_latency(8, 40) == 40
        assert fanout_write_latency(0, 40) == 0

    def test_chained_loses_for_wide_sharing(self):
        for ws in (2, 8, 32):
            assert chained_write_latency(ws, 40) >= fanout_write_latency(ws, 40)

    def test_negative_worker_set_rejected(self):
        with pytest.raises(ValueError):
            chained_write_latency(-1, 40)
