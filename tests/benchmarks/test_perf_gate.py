"""The CI perf-regression gate in benchmarks/check_perf_regression.py."""

from __future__ import annotations

import importlib.util
import json
import pathlib

_SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "check_perf_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_perf_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


BASELINE = {"kernel": {"events_per_sec": 100_000}, "hot": {"events_per_sec": 50_000}}


class TestCheck:
    def test_within_tolerance_passes(self):
        fresh = {"kernel": {"events_per_sec": 85_000}, "hot": {"events_per_sec": 60_000}}
        assert gate.check(fresh, BASELINE, 0.20) == []

    def test_regression_fails_with_message(self):
        fresh = {"kernel": {"events_per_sec": 70_000}, "hot": {"events_per_sec": 50_000}}
        problems = gate.check(fresh, BASELINE, 0.20)
        assert len(problems) == 1
        assert "kernel" in problems[0] and "30.0%" in problems[0]

    def test_missing_scenario_fails(self):
        problems = gate.check({"kernel": {"events_per_sec": 100_000}}, BASELINE, 0.20)
        assert problems == ["hot: scenario missing from fresh run"]

    def test_extra_fresh_scenarios_ignored(self):
        fresh = dict(BASELINE, new_scenario={"events_per_sec": 1})
        assert gate.check(fresh, BASELINE, 0.20) == []


class TestEndToEnd:
    def test_main_exit_codes(self, tmp_path, monkeypatch, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"scenarios": BASELINE}))
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"scenarios": BASELINE}))
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"scenarios": {"kernel": {"events_per_sec": 1}, "hot": {"events_per_sec": 1}}})
        )
        monkeypatch.setattr(
            "sys.argv",
            ["check", "--fresh", str(good), "--baseline", str(base)],
        )
        assert gate.main() == 0
        assert "perf gate passed" in capsys.readouterr().out
        monkeypatch.setattr(
            "sys.argv",
            ["check", "--fresh", str(bad), "--baseline", str(base)],
        )
        assert gate.main() == 1
        assert "FAILED" in capsys.readouterr().err

    def test_committed_baselines_parse(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        for name in ("BENCH_kernel.json", "BENCH_hotpath.json"):
            scenarios = gate.load_scenarios(str(root / "benchmarks" / name))
            assert scenarios, name
            for record in scenarios.values():
                assert record["events_per_sec"] > 0
