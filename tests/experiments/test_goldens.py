"""Golden-cycle determinism contract.

The cycle counts below were recorded with the *pre-optimization* event
kernel and network fabric (PR 2's seed), and the optimized hot paths must
reproduce them bit-for-bit: tuple-based heap entries, the O(1) live-event
counter, allocation-free packet delivery, and memoized routes are all
wall-clock changes, never timing-model changes.  A mismatch here means an
optimization altered simulated behaviour — exactly the regression the
sweep result cache cannot tolerate, since it assumes (config, workload,
source) fully determines the result.
"""

from __future__ import annotations

import pytest

from repro import AlewifeConfig, run_experiment
from repro.workloads import MultigridWorkload, WeatherWorkload

#: (config, workload factory, expected cycles / traps / packets) — values
#: recorded from the unoptimized kernel at seed commit 5fcbdfc.
GOLDENS = {
    "weather-limitless4-ts50-p64": (
        dict(n_procs=64, protocol="limitless", pointers=4, ts=50),
        lambda: WeatherWorkload(iterations=5),
        dict(cycles=6068, traps=52, packets=8626),
    ),
    "weather-dir4nb-p16": (
        dict(n_procs=16, protocol="limited", pointers=4),
        lambda: WeatherWorkload(iterations=3),
        dict(cycles=2595, traps=0, packets=1746),
    ),
    "weather-fullmap-p16": (
        dict(n_procs=16, protocol="fullmap"),
        lambda: WeatherWorkload(iterations=3),
        dict(cycles=2097, traps=0, packets=1292),
    ),
    "multigrid-limitless4-ts50-p16": (
        dict(n_procs=16, protocol="limitless", pointers=4, ts=50),
        lambda: MultigridWorkload(levels=(2, 2), points_per_proc=16),
        dict(cycles=2432, traps=6, packets=1818),
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_golden_cycle_counts(name):
    config_kw, workload_factory, expected = GOLDENS[name]
    stats = run_experiment(AlewifeConfig(**config_kw), workload_factory())
    assert stats.cycles == expected["cycles"], (
        f"{name}: simulated {stats.cycles} cycles, golden "
        f"{expected['cycles']} — a kernel/network change altered timing"
    )
    assert stats.traps_taken == expected["traps"]
    assert stats.network.packets == expected["packets"]
