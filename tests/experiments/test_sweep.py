"""Tests for the sweep machinery and canonical figure definitions."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_FIGURES,
    SweepPoint,
    figure7,
    figure8,
    pointer_points,
    run_sweep,
    scheme_points,
    ts_points,
)
from repro.machine import AlewifeConfig
from repro.workloads import HotSpotWorkload


def base_config():
    return AlewifeConfig(
        n_procs=8,
        cache_lines=256,
        segment_bytes=1 << 16,
        max_cycles=4_000_000,
    )


class TestRunSweep:
    def test_runs_each_point(self):
        points = [
            SweepPoint("full", dict(protocol="fullmap")),
            SweepPoint("dir1", dict(protocol="limited", pointers=1)),
        ]
        result = run_sweep(
            "t", base_config(), points, lambda: HotSpotWorkload(rounds=2)
        )
        assert result.labels() == ["full", "dir1"]
        assert result.cycles("full") > 0
        assert result.stats("dir1").counters.get("dir.pointer_evictions") > 0

    def test_ratios(self):
        points = [
            SweepPoint("full", dict(protocol="fullmap")),
            SweepPoint("dir1", dict(protocol="limited", pointers=1)),
        ]
        result = run_sweep(
            "t", base_config(), points, lambda: HotSpotWorkload(rounds=2)
        )
        ratios = result.ratios("full")
        assert ratios["full"] == 1.0
        assert ratios["dir1"] > 1.0

    def test_unknown_label_raises(self):
        result = run_sweep(
            "t",
            base_config(),
            [SweepPoint("full", dict(protocol="fullmap"))],
            lambda: HotSpotWorkload(rounds=1),
        )
        with pytest.raises(KeyError):
            result.cycles("nope")

    def test_progress_callback(self):
        seen = []
        run_sweep(
            "t",
            base_config(),
            [SweepPoint("full", dict(protocol="fullmap"))],
            lambda: HotSpotWorkload(rounds=1),
            progress=lambda label, stats: seen.append(label),
        )
        assert seen == ["full"]

    def test_table_and_chart_render(self):
        result = run_sweep(
            "chart title",
            base_config(),
            [SweepPoint("full", dict(protocol="fullmap"))],
            lambda: HotSpotWorkload(rounds=1),
        )
        assert "full" in result.table()
        assert "chart title" in result.chart()


class TestPointFactories:
    def test_scheme_points_default(self):
        labels = [p.label for p in scheme_points()]
        assert "Full-Map" in labels
        assert "Dir4NB" in labels

    def test_ts_points(self):
        assert [p.overrides["ts"] for p in ts_points((25, 50))] == [25, 50]

    def test_pointer_points(self):
        assert [p.overrides["pointers"] for p in pointer_points((1, 4))] == [1, 4]


class TestFigures:
    def test_all_figures_registry(self):
        assert set(ALL_FIGURES) == {"figure7", "figure8", "figure9", "figure10"}

    def test_figure7_small_scale(self):
        result = figure7(n_procs=8, levels=(1,))
        assert len(result.rows) == 4
        assert "Figure 7" in result.title

    def test_figure8_small_scale_keeps_ordering(self):
        result = figure8(n_procs=16, iterations=3)
        assert result.cycles("Dir1NB") >= result.cycles("Dir4NB")
        assert result.cycles("Dir4NB") > result.cycles("Full-Map")

    def test_figure8_optimized_variant(self):
        result = figure8(n_procs=8, iterations=2, optimized=True)
        assert "optimized" in result.title
