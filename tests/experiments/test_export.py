"""Tests for sweep-result export."""

from __future__ import annotations

import json

from repro.experiments import SweepPoint, run_sweep
from repro.machine import AlewifeConfig
from repro.workloads import HotSpotWorkload


def small_sweep():
    return run_sweep(
        "export-test",
        AlewifeConfig(
            n_procs=4,
            cache_lines=128,
            segment_bytes=1 << 16,
            max_cycles=2_000_000,
        ),
        [
            SweepPoint("full", dict(protocol="fullmap")),
            SweepPoint("ll2", dict(protocol="limitless", pointers=2, ts=40)),
        ],
        lambda: HotSpotWorkload(rounds=2),
    )


class TestExport:
    def test_to_dict_round_trips_through_json(self):
        record = small_sweep().to_dict()
        blob = json.dumps(record)
        loaded = json.loads(blob)
        assert loaded["title"] == "export-test"
        assert [r["label"] for r in loaded["rows"]] == ["full", "ll2"]
        assert loaded["rows"][1]["config"]["protocol"] == "limitless"
        assert loaded["rows"][0]["cycles"] > 0

    def test_save_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        small_sweep().save_json(path)
        loaded = json.loads(path.read_text())
        assert len(loaded["rows"]) == 2
        assert "counters" in loaded["rows"][0]

    def test_record_carries_mechanism_counters(self):
        record = small_sweep().to_dict()
        ll_row = record["rows"][1]
        assert "limitless.traps" in ll_row["counters"]
