"""Regression tests for allocator staggering (cache-alias pathology).

Per-node segments are power-of-two sized, so offset-k of every node maps to
the same direct-mapped cache set.  Un-staggered allocation put every node's
first variable in set 0, and any cross-node data mix evicted the hot
variable every sweep — an artifact that masked real protocol behaviour
(and, before the fix, produced ghost traps in every Weather iteration).
"""

from __future__ import annotations

from repro.cache.cache import CacheArray
from repro.machine import AlewifeConfig, AlewifeMachine, run_experiment
from repro.mem.address import AddressSpace, Allocator
from repro.workloads import WeatherWorkload


class TestStaggering:
    def setup_method(self):
        self.space = AddressSpace(n_nodes=16, block_bytes=16, segment_bytes=1 << 16)
        self.alloc = Allocator(self.space)
        self.array = CacheArray(self.space, n_lines=256)

    def test_first_allocations_map_to_distinct_cache_sets(self):
        firsts = [
            self.alloc.alloc_scalar(f"v{home}", home=home) for home in range(16)
        ]
        indices = {self.array.index_of(self.space.block_of(a.base)) for a in firsts}
        assert len(indices) == 16

    def test_stagger_disabled_reproduces_the_alias(self):
        alloc = Allocator(self.space, stagger_blocks=0)
        firsts = [alloc.alloc_scalar(f"v{home}", home=home) for home in range(16)]
        indices = {self.array.index_of(self.space.block_of(a.base)) for a in firsts}
        assert indices == {self.array.index_of(self.space.block_of(firsts[0].base))}

    def test_stagger_stays_inside_segment(self):
        space = AddressSpace(n_nodes=256, block_bytes=16, segment_bytes=1 << 14)
        alloc = Allocator(space)
        for home in (0, 17, 128, 255):
            got = alloc.alloc_scalar(f"v{home}", home=home)
            assert space.home_of(got.base) == home


class TestHotVariableCachesAcrossIterations:
    def test_full_map_weather_hits_after_first_sweep(self):
        """The defining property of the hot-spot experiment: under
        full-map, every processor caches the read-only variable after its
        first read, so later sweeps generate no traffic for it."""
        machine = AlewifeMachine(
            AlewifeConfig(
                n_procs=16,
                protocol="fullmap",
                max_cycles=8_000_000,
            )
        )
        machine.run(WeatherWorkload(iterations=4, hot_reads_per_iteration=4))
        hot = next(
            a for a in machine.allocator.allocations if a.name == "weather.init"
        )
        blk = machine.space.block_of(hot.base)
        # at quiescence, (nearly) every node still holds the block
        holders = sum(
            1 for n in machine.nodes if n.cache_array.lookup(blk) is not None
        )
        assert holders >= 14

    def test_limitless_traps_concentrate_in_first_iteration(self):
        stats_few = run_experiment(
            AlewifeConfig(n_procs=16, protocol="limitless", pointers=4, ts=50),
            WeatherWorkload(iterations=2),
        )
        stats_many = run_experiment(
            AlewifeConfig(n_procs=16, protocol="limitless", pointers=4, ts=50),
            WeatherWorkload(iterations=6),
        )
        # the hot variable traps only during the first sweep, so trap
        # counts grow far slower than iteration count (barrier flags add
        # a small per-epoch tail)
        assert stats_many.traps_taken < 3 * stats_few.traps_taken
