"""Tests for address-space geometry and allocation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import WORD_BYTES, AddressSpace, Allocator


class TestAddressSpace:
    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            AddressSpace(n_nodes=4, block_bytes=24)

    def test_rejects_tiny_segment(self):
        with pytest.raises(ValueError):
            AddressSpace(n_nodes=4, block_bytes=64, segment_bytes=32)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            AddressSpace(n_nodes=0)

    def test_words_per_block(self, space4):
        assert space4.words_per_block == 4

    def test_home_decoding(self, space4):
        for home in range(4):
            addr = space4.address(home, 0x120)
            assert space4.home_of(addr) == home

    def test_out_of_range_address_raises(self, space4):
        beyond = space4.address(3, space4.segment_bytes - 4) + space4.segment_bytes
        with pytest.raises(ValueError):
            space4.home_of(beyond)

    def test_block_alignment(self, space4):
        addr = space4.address(2, 0x23)
        block = space4.block_of(addr)
        assert block % space4.block_bytes == 0
        assert block <= addr < block + space4.block_bytes

    def test_word_in_block(self, space4):
        base = space4.address(1, 0x40)
        assert space4.word_in_block(base) == 0
        assert space4.word_in_block(base + 4) == 1
        assert space4.word_in_block(base + 12) == 3

    @given(
        home=st.integers(min_value=0, max_value=3),
        offset=st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    def test_roundtrip_properties(self, home, offset):
        space = AddressSpace(n_nodes=4, block_bytes=16, segment_bytes=1 << 16)
        addr = space.address(home, offset)
        assert space.home_of(addr) == home
        block = space.block_of(addr)
        assert space.home_of(block) == home  # blocks never straddle homes
        assert 0 <= space.word_in_block(addr) < space.words_per_block


class TestAllocator:
    def test_scalar_allocations_get_distinct_blocks(self, space4):
        alloc = Allocator(space4)
        a = alloc.alloc_scalar("a", home=0)
        b = alloc.alloc_scalar("b", home=0)
        assert space4.block_of(a.base) != space4.block_of(b.base)

    def test_home_placement(self, space4):
        alloc = Allocator(space4)
        for home in range(4):
            got = alloc.alloc_scalar(f"v{home}", home=home)
            assert space4.home_of(got.base) == home

    def test_word_indexing(self, space4):
        alloc = Allocator(space4)
        arr = alloc.alloc_words("arr", 8, home=1)
        assert arr.word(0) == arr.base
        assert arr.word(7) == arr.base + 7 * WORD_BYTES
        with pytest.raises(IndexError):
            arr.word(8)

    def test_segment_exhaustion(self, space4):
        alloc = Allocator(space4)
        with pytest.raises(MemoryError):
            alloc.alloc("big", space4.segment_bytes + 1, home=0)

    def test_rejects_non_positive(self, space4):
        alloc = Allocator(space4)
        with pytest.raises(ValueError):
            alloc.alloc("zero", 0, home=0)

    def test_allocations_never_overlap(self, space4):
        alloc = Allocator(space4)
        spans = []
        for i in range(20):
            a = alloc.alloc(f"x{i}", 12 + i, home=i % 4)
            spans.append((a.base, a.base + a.n_bytes))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    @given(sizes=st.lists(st.integers(min_value=1, max_value=64), max_size=30))
    def test_block_aligned_allocations_are_aligned(self, sizes):
        space = AddressSpace(n_nodes=2, block_bytes=16, segment_bytes=1 << 16)
        alloc = Allocator(space)
        for i, size in enumerate(sizes):
            a = alloc.alloc(f"v{i}", size, home=i % 2)
            assert a.base % space.block_bytes == 0
