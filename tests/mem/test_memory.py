"""Tests for per-node main memory and block data."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import AddressSpace
from repro.mem.memory import BlockData, MainMemory


class TestBlockData:
    def test_zero_filled(self):
        assert BlockData(4).words == [0, 0, 0, 0]

    def test_copy_is_independent(self):
        a = BlockData(4)
        b = a.copy()
        b.words[0] = 9
        assert a.words[0] == 0

    def test_equality_by_value(self):
        a, b = BlockData(4), BlockData(4)
        assert a == b
        b.words[2] = 1
        assert a != b
        assert a != "not a block"


class TestMainMemory:
    def setup_method(self):
        self.space = AddressSpace(n_nodes=4, block_bytes=16, segment_bytes=1 << 16)
        self.memory = MainMemory(self.space, node_id=1)

    def addr(self, offset=0x100):
        return self.space.address(1, offset)

    def test_blocks_materialize_zeroed(self):
        block = self.memory.block(self.space.block_of(self.addr()))
        assert block.words == [0, 0, 0, 0]
        assert self.memory.touched_blocks == 1

    def test_same_block_returned(self):
        blk = self.space.block_of(self.addr())
        assert self.memory.block(blk) is self.memory.block(blk)

    def test_rejects_foreign_blocks(self):
        foreign = self.space.address(2, 0x100)
        with pytest.raises(ValueError):
            self.memory.block(self.space.block_of(foreign))

    def test_read_block_is_a_snapshot(self):
        blk = self.space.block_of(self.addr())
        snap = self.memory.read_block(blk)
        snap.words[0] = 42
        assert self.memory.block(blk).words[0] == 0

    def test_write_block_lands(self):
        blk = self.space.block_of(self.addr())
        incoming = BlockData(4)
        incoming.words[3] = 7
        self.memory.write_block(blk, incoming)
        assert self.memory.block(blk).words[3] == 7

    def test_peek_poke_word(self):
        self.memory.poke_word(self.addr() + 8, 31)
        assert self.memory.peek_word(self.addr() + 8) == 31
        assert self.memory.peek_word(self.addr()) == 0

    @given(
        offsets=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=-(2**31), max_value=2**31 - 1),
            ),
            max_size=30,
        )
    )
    def test_words_are_independent(self, offsets):
        space = AddressSpace(n_nodes=2, block_bytes=16, segment_bytes=1 << 16)
        memory = MainMemory(space, 0)
        expected = {}
        for word_index, value in offsets:
            addr = space.address(0, word_index * 4)
            memory.poke_word(addr, value)
            expected[addr] = value
        for addr, value in expected.items():
            assert memory.peek_word(addr) == value
