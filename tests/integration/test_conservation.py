"""Message-conservation properties across full machine runs.

Coherence protocols have bookkeeping identities that must hold over any
complete execution: every request gets exactly one response, every
invalidation gets exactly one resolution, fills equal data replies.  These
catch lost/duplicated packets that latency-level tests can miss.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import (
    ButterflyWorkload,
    MigratoryWorkload,
    MultigridWorkload,
    WeatherWorkload,
)

WORKLOADS = [
    WeatherWorkload(iterations=3),
    MultigridWorkload(levels=(1, 1)),
    MigratoryWorkload(rounds=2),
    ButterflyWorkload(sweeps=1),
]

PROTOCOLS = [
    ("fullmap", {}),
    ("limited", {"pointers": 1}),
    ("limitless", {"pointers": 2, "ts": 40}),
    ("chained", {}),
    ("limited_broadcast", {"pointers": 2}),
]


def run(workload, protocol, overrides):
    return run_experiment(
        AlewifeConfig(
            n_procs=8,
            protocol=protocol,
            cache_lines=512,
            segment_bytes=1 << 17,
            max_cycles=8_000_000,
            **overrides,
        ),
        workload,
    )


@pytest.mark.parametrize("protocol,overrides", PROTOCOLS, ids=[p for p, _ in PROTOCOLS])
@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
class TestConservation:
    def test_every_data_reply_fills_a_cache(self, workload, protocol, overrides):
        stats = run(workload, protocol, overrides)
        net = stats.network.per_opcode
        fills = stats.counters.get("cache.fills")
        assert fills == net.get("RDATA", 0) + net.get("WDATA", 0)

    def test_every_invalidation_resolved(self, workload, protocol, overrides):
        """INVs sent equals INVs received; each produced ACKC or UPDATE."""
        stats = run(workload, protocol, overrides)
        net = stats.network.per_opcode
        invs = net.get("INV", 0)
        responses = net.get("ACKC", 0) + net.get("UPDATE", 0)
        assert responses == invs

    def test_requests_equal_responses(self, workload, protocol, overrides):
        """RREQ+WREQ each get exactly one RDATA/WDATA/BUSY (diverted ones
        included — software answers them too)."""
        stats = run(workload, protocol, overrides)
        net = stats.network.per_opcode
        requests = net.get("RREQ", 0) + net.get("WREQ", 0)
        responses = (
            net.get("RDATA", 0) + net.get("WDATA", 0) + net.get("BUSY", 0)
        )
        assert responses == requests
