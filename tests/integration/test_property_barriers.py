"""Property test: barriers stay correct across protocols, arities, sizes."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.sync.barrier import barrier_wait, build_combining_tree
from repro.workloads.base import Workload


class _OrderedPhases(Workload):
    """Each processor logs (round, proc) before each barrier; rounds must
    never interleave in the log if the barrier is correct."""

    name = "phases"

    def __init__(self, rounds, arity):
        self.rounds = rounds
        self.arity = arity
        self.log: list[tuple[int, int]] = []

    def build(self, machine):
        n = machine.config.n_procs
        spec = build_combining_tree(
            machine.allocator, list(range(n)), arity=self.arity
        )
        poll = machine.config.spin_poll_interval

        def program(p):
            for r in range(1, self.rounds + 1):
                self.log.append((r, p))
                yield ops.think(3 + (p * 7) % 23)  # skewed arrival times
                yield from barrier_wait(spec, p, r, poll_interval=poll)

        return {p: [program(p)] for p in range(n)}


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_procs=st.integers(min_value=2, max_value=12),
    arity=st.integers(min_value=2, max_value=5),
    rounds=st.integers(min_value=1, max_value=3),
    protocol=st.sampled_from(["fullmap", "limited", "limitless", "chained"]),
    memory_model=st.sampled_from(["sc", "wo"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_barrier_rounds_never_interleave(
    n_procs, arity, rounds, protocol, memory_model, seed
):
    config = AlewifeConfig(
        n_procs=n_procs,
        protocol=protocol,
        pointers=1,
        ts=30,
        memory_model=memory_model,
        cache_lines=128,
        segment_bytes=1 << 16,
        seed=seed,
        max_cycles=4_000_000,
    )
    workload = _OrderedPhases(rounds, arity)
    AlewifeMachine(config).run(workload)  # audits on completion
    seen_rounds = [r for r, _ in workload.log]
    assert seen_rounds == sorted(seen_rounds)
    assert len(workload.log) == n_procs * rounds
