"""Integration matrix: every protocol x every workload, audited.

Each cell runs a small machine to completion; AlewifeMachine.run audits the
coherence invariants at quiescence, so a pass certifies both forward
progress and a consistent final memory state.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import (
    HotSpotWorkload,
    MatmulWorkload,
    MigratoryWorkload,
    MultigridWorkload,
    ProducerConsumerWorkload,
    SyntheticSharingWorkload,
    WeatherWorkload,
)

PROTOCOLS = [
    ("fullmap", {}),
    ("limited", {"pointers": 1}),
    ("limited", {"pointers": 2}),
    ("limitless", {"pointers": 1, "ts": 40}),
    ("limitless", {"pointers": 2, "ts": 40}),
    ("limitless_approx", {"pointers": 2, "ts": 40}),
    ("chained", {}),
    ("trap_always", {"ts": 30}),
]

WORKLOADS = [
    HotSpotWorkload(rounds=2, write_period=1),
    WeatherWorkload(iterations=2, hot_reads_per_iteration=3),
    MultigridWorkload(levels=(1, 1)),
    MigratoryWorkload(rounds=1),
    ProducerConsumerWorkload(epochs=2),
    SyntheticSharingWorkload(worker_sets=[(2, 2), (5, 1)], rounds=2),
    MatmulWorkload(sweeps=1),
]


def config_for(protocol, overrides):
    return AlewifeConfig(
        n_procs=8,
        protocol=protocol,
        cache_lines=512,
        segment_bytes=1 << 17,
        max_cycles=8_000_000,
        seed=11,
        **overrides,
    )


@pytest.mark.parametrize(
    "protocol,overrides", PROTOCOLS, ids=[f"{p}-{o}" for p, o in PROTOCOLS]
)
@pytest.mark.parametrize("workload", WORKLOADS, ids=[w.name for w in WORKLOADS])
def test_runs_to_completion_and_audits(protocol, overrides, workload):
    stats = run_experiment(config_for(protocol, overrides), workload)
    assert stats.cycles > 0
    assert stats.entries_audited > 0
    assert stats.network.packets > 0


class TestCrossProtocolConsistency:
    """The same workload must do the same *work* under every protocol."""

    def test_hit_plus_miss_counts_conserved(self):
        workload = MultigridWorkload(levels=(1, 1))
        totals = set()
        for protocol, overrides in [("fullmap", {}), ("chained", {})]:
            stats = run_experiment(config_for(protocol, overrides), workload)
            c = stats.counters
            accesses = sum(
                c.get(f"cache.hits.{k}") + c.get(f"cache.misses.{k}")
                for k in ("load", "store", "rmw")
            )
            totals.add(accesses > 0)
        assert totals == {True}

    def test_think_cycles_identical_across_protocols(self):
        workload_cycles = {}
        for protocol, overrides in [("fullmap", {}), ("limited", {"pointers": 1})]:
            stats = run_experiment(
                config_for(protocol, overrides), MigratoryWorkload(rounds=1)
            )
            workload_cycles[protocol] = stats.counters.get("cpu.think_cycles")
        # spin-poll think varies; pure compute think must at least be present
        assert all(v > 0 for v in workload_cycles.values())


class TestScalability:
    @pytest.mark.parametrize("n_procs", [1, 2, 4, 16])
    def test_various_machine_sizes(self, n_procs):
        stats = run_experiment(
            AlewifeConfig(
                n_procs=n_procs,
                protocol="limitless",
                pointers=2,
                ts=40,
                cache_lines=512,
                segment_bytes=1 << 17,
                max_cycles=8_000_000,
            ),
            HotSpotWorkload(rounds=2),
        )
        assert stats.cycles > 0

    @pytest.mark.parametrize("topology", ["mesh", "torus", "omega", "crossbar", "ideal"])
    def test_all_topologies(self, topology):
        stats = run_experiment(
            AlewifeConfig(
                n_procs=16,
                protocol="fullmap",
                topology=topology,
                cache_lines=512,
                segment_bytes=1 << 17,
                max_cycles=8_000_000,
            ),
            MultigridWorkload(levels=(1,)),
        )
        assert stats.cycles > 0

    def test_multiple_contexts_per_processor(self):
        """Two program threads per processor, switched on remote misses."""
        from repro.machine import AlewifeMachine
        from repro.proc import ops
        from repro.workloads.base import Workload

        class TwoThreads(Workload):
            name = "two-threads"

            def build(self, machine):
                n = machine.config.n_procs
                vars_ = [
                    machine.allocator.alloc_scalar(f"v{p}", home=p)
                    for p in range(n)
                ]

                def program(p, salt):
                    for i in range(4):
                        target = vars_[(p + i + salt) % n]
                        yield ops.fetch_add(target.base, 1)
                        yield ops.think(6)

                return {p: [program(p, 0), program(p, 1)] for p in range(n)}

        config = AlewifeConfig(
            n_procs=4,
            protocol="fullmap",
            cache_lines=256,
            segment_bytes=1 << 16,
            max_cycles=8_000_000,
        )
        machine = AlewifeMachine(config)
        stats = machine.run(TwoThreads())
        assert stats.counters.get("cpu.context_switches") > 0
        # 8 threads x 4 increments land somewhere: total increments conserved
        total = 0
        for p in range(4):
            addr = machine.allocator.allocations[p].base
            blk = machine.space.block_of(addr)
            value = machine.nodes[p].memory.peek_word(addr)
            for node in machine.nodes:
                line = node.cache_array.lookup(blk)
                if line is not None and line.state.name == "READ_WRITE":
                    value = line.data.words[machine.space.word_in_block(addr)]
            total += value
        assert total == 32
