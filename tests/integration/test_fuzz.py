"""Property-based fuzzing: random programs must stay coherent everywhere.

Hypothesis generates random little parallel programs (loads, stores,
atomics, think time over a small set of shared variables); every protocol
must run them to completion and pass the quiescence audit, and atomic
increments must never be lost.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.workloads.base import Workload

N_PROCS = 4
N_VARS = 3

op_strategy = st.tuples(
    st.sampled_from(["load", "store", "rmw", "think"]),
    st.integers(min_value=0, max_value=N_VARS - 1),
    st.integers(min_value=1, max_value=20),
)

program_strategy = st.lists(op_strategy, min_size=1, max_size=12)
schedule_strategy = st.lists(program_strategy, min_size=N_PROCS, max_size=N_PROCS)


class _FuzzWorkload(Workload):
    name = "fuzz"

    def __init__(self, schedule):
        self.schedule = schedule
        self.rmw_counts = [0] * N_VARS

    def build(self, machine):
        variables = [
            machine.allocator.alloc_scalar(f"fuzz{i}", home=i % machine.config.n_procs)
            for i in range(N_VARS)
        ]
        self.addrs = [v.base for v in variables]

        def program(p, steps):
            for kind, var, value in steps:
                addr = variables[var].base
                if kind == "load":
                    yield ops.load(addr)
                elif kind == "store":
                    yield ops.store(addr, value)
                elif kind == "rmw":
                    self.rmw_counts[var] += 1
                    yield ops.fetch_add(addr, 1)
                else:
                    yield ops.think(value)

        return {p: [program(p, steps)] for p, steps in enumerate(self.schedule)}


def run_fuzz(schedule, protocol, **overrides):
    config = AlewifeConfig(
        n_procs=N_PROCS,
        protocol=protocol,
        cache_lines=64,
        segment_bytes=1 << 16,
        max_cycles=2_000_000,
        **overrides,
    )
    workload = _FuzzWorkload(schedule)
    machine = AlewifeMachine(config)
    stats = machine.run(workload)  # audits invariants internally
    return machine, workload, stats


def final_word(machine, addr):
    """The coherent value of a word at quiescence (cache RW copy or memory)."""
    blk = machine.space.block_of(addr)
    value = machine.nodes[machine.space.home_of(addr)].memory.peek_word(addr)
    for node in machine.nodes:
        line = node.cache_array.lookup(blk)
        if line is not None and line.state.name == "READ_WRITE":
            value = line.data.words[machine.space.word_in_block(addr)]
    return value


FUZZ_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.mark.parametrize(
    "protocol,overrides",
    [
        ("fullmap", {}),
        ("limited", {"pointers": 1}),
        ("limitless", {"pointers": 1, "ts": 25}),
        ("chained", {}),
        ("trap_always", {"ts": 25}),
    ],
    ids=["fullmap", "dir1nb", "limitless1", "chained", "trap_always"],
)
class TestFuzzedPrograms:
    @given(schedule=schedule_strategy)
    @FUZZ_SETTINGS
    def test_completes_and_audits(self, protocol, overrides, schedule):
        machine, workload, stats = run_fuzz(schedule, protocol, **overrides)
        assert stats.cycles >= 0

    @given(schedule=schedule_strategy)
    @FUZZ_SETTINGS
    def test_rmw_only_programs_conserve_increments(
        self, protocol, overrides, schedule
    ):
        # Keep only think + rmw so the final counter value is predictable.
        filtered = [
            [step for step in program if step[0] in ("rmw", "think")]
            or [("think", 0, 1)]
            for program in schedule
        ]
        machine, workload, _stats = run_fuzz(filtered, protocol, **overrides)
        for var in range(N_VARS):
            assert final_word(machine, workload.addrs[var]) == workload.rmw_counts[var]


class TestDeterministicReplay:
    @given(schedule=schedule_strategy)
    @FUZZ_SETTINGS
    def test_same_schedule_same_cycles(self, schedule):
        _, _, a = run_fuzz(schedule, "limitless", pointers=1, ts=25)
        _, _, b = run_fuzz(schedule, "limitless", pointers=1, ts=25)
        assert a.cycles == b.cycles
        assert a.network.packets == b.network.packets
