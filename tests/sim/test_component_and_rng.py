"""Tests for the component base class and deterministic RNG."""

from __future__ import annotations

from repro.sim.component import Component
from repro.sim.rng import DeterministicRng


class TestComponent:
    def test_now_tracks_simulator(self, sim):
        comp = Component(sim, "c0")
        seen = []
        sim.call_at(12, lambda: seen.append(comp.now))
        sim.run()
        assert seen == [12]

    def test_schedule_is_relative(self, sim):
        comp = Component(sim, "c0")
        seen = []
        sim.call_at(10, lambda: comp.schedule(5, lambda: seen.append(comp.now)))
        sim.run()
        assert seen == [15]


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(5)
        b = DeterministicRng(5)
        assert [a.randint("x", 0, 100) for _ in range(10)] == [
            b.randint("x", 0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(5)
        b = DeterministicRng(6)
        assert [a.randint("x", 0, 10**9) for _ in range(4)] != [
            b.randint("x", 0, 10**9) for _ in range(4)
        ]

    def test_streams_are_independent(self):
        """Draws on one stream must not perturb another — the property
        that keeps e.g. network jitter from changing workload layout."""
        a = DeterministicRng(5)
        b = DeterministicRng(5)
        # interleave extra draws on an unrelated stream in machine `a`
        seq_a = []
        for _ in range(5):
            a.randint("noise", 0, 100)
            seq_a.append(a.randint("x", 0, 100))
        seq_b = [b.randint("x", 0, 100) for _ in range(5)]
        assert seq_a == seq_b

    def test_choice_and_shuffled(self):
        rng = DeterministicRng(7)
        items = list(range(10))
        assert rng.choice("c", items) in items
        shuffled = rng.shuffled("s", items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # input untouched

    def test_stream_is_cached(self):
        rng = DeterministicRng(1)
        assert rng.stream("a") is rng.stream("a")
        assert rng.stream("a") is not rng.stream("b")
