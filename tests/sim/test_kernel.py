"""Tests for the event-driven simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.kernel import (
    DeadlockError,
    SimulationError,
    Simulator,
    StallableResource,
    simulate_all,
)


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        log = []
        sim.call_at(30, lambda: log.append(30))
        sim.call_at(10, lambda: log.append(10))
        sim.call_at(20, lambda: log.append(20))
        sim.run()
        assert log == [10, 20, 30]

    def test_ties_run_in_scheduling_order(self, sim):
        log = []
        for i in range(5):
            sim.call_at(7, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.call_at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_call_after_is_relative(self, sim):
        seen = []
        sim.call_at(10, lambda: sim.call_after(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15]

    def test_scheduling_in_the_past_raises(self, sim):
        sim.call_at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.call_after(-1, lambda: None)

    def test_cancelled_event_does_not_run(self, sim):
        log = []
        event = sim.call_at(10, lambda: log.append("nope"))
        event.cancel()
        sim.run()
        assert log == []

    def test_events_scheduled_during_execution_run(self, sim):
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.call_after(1, lambda: chain(n + 1))

        sim.call_at(0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3]


class TestRunLimits:
    def test_run_until_stops_early(self, sim):
        log = []
        sim.call_at(10, lambda: log.append("early"))
        sim.call_at(100, lambda: log.append("late"))
        sim.run(until=50)
        assert log == ["early"]
        assert sim.now == 50

    def test_max_cycles_is_respected(self):
        sim = Simulator(max_cycles=25)
        log = []
        sim.call_at(10, lambda: log.append("in"))
        sim.call_at(30, lambda: log.append("out"))
        sim.run()
        assert log == ["in"]

    def test_pending_events_counts_live_events(self, sim):
        keep = sim.call_at(10, lambda: None)
        dead = sim.call_at(20, lambda: None)
        dead.cancel()
        assert sim.pending_events == 1
        assert keep is not dead

    def test_drain_check_raises_when_events_remain(self, sim):
        sim.call_at(10, lambda: None)
        with pytest.raises(DeadlockError):
            sim.drain_check()

    def test_drain_check_passes_when_empty(self, sim):
        sim.run()
        sim.drain_check()


class TestArgCarryingEvents:
    def test_call_at_passes_argument(self, sim):
        seen = []
        sim.call_at(5, seen.append, "payload")
        sim.run()
        assert seen == ["payload"]

    def test_call_after_passes_argument(self, sim):
        seen = []
        sim.call_after(3, seen.append, None)  # None is a legal argument
        sim.run()
        assert seen == [None]

    def test_arg_events_interleave_deterministically(self, sim):
        log = []
        sim.call_at(7, log.append, "a")
        sim.call_at(7, lambda: log.append("b"))
        sim.call_at(7, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]


class TestPost:
    def test_post_schedules_without_a_handle(self, sim):
        log = []
        assert sim.post(5, log.append, "x") is None
        assert sim.pending_events == 1
        sim.run()
        assert log == ["x"]
        assert sim.pending_events == 0

    def test_post_after_is_relative(self, sim):
        seen = []
        sim.call_at(10, lambda: sim.post_after(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15]

    def test_post_in_the_past_raises(self, sim):
        sim.call_at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post(5, lambda: None)

    def test_post_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.post_after(-1, lambda: None)

    def test_posts_and_events_share_one_time_order(self, sim):
        log = []
        sim.call_at(7, log.append, "event")
        sim.post(7, log.append, "post")
        cancelled = sim.call_at(7, lambda: log.append("cancelled"))
        sim.post(7, log.append, "tail")
        cancelled.cancel()
        sim.run()
        assert log == ["event", "post", "tail"]


class TestLiveEventCounter:
    def test_counter_tracks_schedule_cancel_execute(self, sim):
        first = sim.call_at(10, lambda: None)
        second = sim.call_at(20, lambda: None)
        assert sim.pending_events == 2
        second.cancel()
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0
        assert first.cancelled is False

    def test_double_cancel_decrements_once(self, sim):
        event = sim.call_at(10, lambda: None)
        sim.call_at(11, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_execution_is_a_noop(self, sim):
        log = []
        event = sim.call_at(10, lambda: log.append("ran"))
        sim.call_at(20, lambda: None)
        sim.run(until=15)
        assert log == ["ran"]
        event.cancel()
        assert sim.pending_events == 1  # the cycle-20 event is still live

    def test_counter_matches_queue_scan(self, sim):
        events = [sim.call_at(t, lambda: None) for t in range(5, 25, 5)]
        events[1].cancel()
        events[3].cancel()
        live_scan = sum(
            1 for *_, e in sim._queue if e is None or not e.cancelled
        )
        assert sim.pending_events == live_scan == 2


class TestStallableResource:
    def test_serializes_requests(self, sim):
        res = StallableResource(sim, "dir")
        first = res.acquire(10)
        second = res.acquire(10)
        assert first == 10
        assert second == 20

    def test_acquire_after_idle_starts_now(self, sim):
        res = StallableResource(sim, "dir")
        res.acquire(5)
        sim.call_at(100, lambda: None)
        sim.run()
        assert res.acquire(5) == 105

    def test_not_before_delays_start(self, sim):
        res = StallableResource(sim, "dir")
        assert res.acquire(5, not_before=50) == 55

    def test_stall_pushes_out_free_time(self, sim):
        res = StallableResource(sim, "dir")
        res.acquire(10)
        res.stall(100)
        assert res.acquire(1) == 111

    def test_utilization(self, sim):
        res = StallableResource(sim, "dir")
        res.acquire(25)
        assert res.utilization(100) == 0.25
        assert res.utilization(0) == 0.0

    def test_busy_cycles_accumulate(self, sim):
        res = StallableResource(sim, "dir")
        res.acquire(3)
        res.acquire(4)
        assert res.busy_cycles == 7
        assert res.requests == 2


class TestSimulateAll:
    def test_starts_components_with_start_method(self, sim):
        started = []

        class Comp:
            def __init__(self, n):
                self.n = n

            def start(self):
                started.append(self.n)

        simulate_all(sim, [Comp(1), Comp(2), object()])
        assert started == [1, 2]


class TestSameCycleFastLane:
    """Events scheduled for the current cycle during the current cycle."""

    def test_same_cycle_posts_run_fifo(self, sim):
        log = []

        def root():
            sim.post(sim.now, lambda: log.append("a"))
            sim.post(sim.now, lambda: log.append("b"))
            sim.post(sim.now, lambda: log.append("c"))

        sim.call_at(5, root)
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 5

    def test_lane_events_chain_within_one_cycle(self, sim):
        log = []

        def chain(depth):
            log.append(depth)
            if depth < 4:
                sim.post(sim.now, chain, depth + 1)

        sim.call_at(3, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3, 4]
        assert sim.now == 3

    def test_earlier_heap_event_beats_later_lane_entry(self, sim):
        # An event scheduled for cycle 10 in an earlier cycle has a smaller
        # seq than anything scheduled *during* cycle 10, so it must run
        # before lane entries created by cycle-10 callbacks.
        log = []
        sim.call_at(10, lambda: log.append("pending"))

        def first():
            log.append("first")
            sim.post(sim.now, lambda: log.append("lane"))

        sim.call_at(9, lambda: sim.post(10, first))
        sim.run()
        assert log == ["pending", "first", "lane"]

    def test_heap_event_with_smaller_seq_beats_lane_head(self, sim):
        # A and B are both pre-scheduled for cycle 10.  A's callback posts
        # lane entry L.  B's seq is smaller than L's, so the order must be
        # A, B, L — the kernel compares the heap top's seq against the
        # lane head instead of blindly draining the lane.
        log = []

        def a():
            log.append("A")
            sim.post(sim.now, lambda: log.append("L"))

        sim.call_at(10, a)
        sim.call_at(10, lambda: log.append("B"))
        sim.run()
        assert log == ["A", "B", "L"]

    def test_cancelled_lane_event_does_not_run(self, sim):
        log = []

        def root():
            handle = sim.call_at(sim.now, lambda: log.append("dead"))
            sim.call_at(sim.now, lambda: log.append("live"))
            handle.cancel()

        sim.call_at(2, root)
        sim.run()
        assert log == ["live"]

    def test_pending_events_counts_lane_entries(self, sim):
        seen = []

        def root():
            sim.post(sim.now, lambda: None)
            sim.post(sim.now + 1, lambda: None)
            seen.append(sim.pending_events)

        sim.call_at(1, root)
        sim.run()
        assert seen == [2]
        assert sim.pending_events == 0

    def test_exception_spills_lane_back_to_heap(self, sim):
        log = []

        def root():
            sim.post(sim.now, lambda: log.append("after"))
            raise RuntimeError("boom")

        sim.call_at(4, root)
        with pytest.raises(RuntimeError):
            sim.run()
        # The lane entry survived the exception and runs on resume, in
        # its original position.
        sim.run()
        assert log == ["after"]


class TestPostFront:
    def test_front_events_run_before_normal_events(self, sim):
        log = []
        sim.call_at(10, lambda: log.append("normal"))
        sim.post_front(10, lambda: log.append("front"))
        sim.run()
        assert log == ["front", "normal"]

    def test_front_scheduling_now_while_running_raises(self, sim):
        def root():
            sim.post_front(sim.now, lambda: None)

        sim.call_at(5, root)
        with pytest.raises(SimulationError):
            sim.run()

    def test_front_scheduling_in_the_past_raises(self, sim):
        sim.call_at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post_front(5, lambda: None)


class TestRunUntilWindow:
    def test_executes_strictly_before_limit(self, sim):
        log = []
        sim.call_at(5, lambda: log.append(5))
        sim.call_at(10, lambda: log.append(10))
        sim.call_at(15, lambda: log.append(15))
        sim.run_until(10)
        assert log == [5]
        assert sim.now == 10
        sim.run_until(11)
        assert log == [5, 10]
        sim.run()
        assert log == [5, 10, 15]

    def test_advances_now_with_no_events(self, sim):
        sim.run_until(100)
        assert sim.now == 100

    def test_window_below_now_raises(self, sim):
        sim.run_until(50)
        with pytest.raises(SimulationError):
            sim.run_until(49)

    def test_next_event_time_skips_cancelled(self, sim):
        dead = sim.call_at(5, lambda: None)
        sim.call_at(9, lambda: None)
        dead.cancel()
        assert sim.next_event_time() == 9
        sim.run()
        assert sim.next_event_time() is None
