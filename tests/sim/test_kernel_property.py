"""Property test: the kernel executes in exact (time, seq) order.

A reference executor keeps every scheduled callback in a plain list and
repeatedly runs the live minimum by ``(time, seq)`` — the definitionally
correct order, with none of the kernel's machinery (heap, same-cycle fast
lane, cancel handles).  The property drives both with the same randomly
generated program of interleaved ``call_at(now)``/``post``/``cancel``
actions and demands identical execution logs, so the fast lane cannot
reorder anything relative to the specification.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator

#: one root: (start time, child delays, cancel target, whether to cancel)
_root = st.tuples(
    st.integers(0, 4),
    st.lists(st.integers(0, 3), max_size=3),
    st.integers(0, 10),
    st.booleans(),
)


class _RefEvent:
    __slots__ = ("time", "seq", "action", "done", "cancelled")

    def __init__(self, time, seq, action):
        self.time = time
        self.seq = seq
        self.action = action
        self.done = False
        self.cancelled = False

    def cancel(self):
        if not self.done:
            self.cancelled = True


class _RefSim:
    """List-based (time, seq) executor: the ordering specification."""

    def __init__(self):
        self.events: list[_RefEvent] = []
        self.seq = 0
        self.now = 0

    def schedule(self, time, action):
        event = _RefEvent(time, self.seq, action)
        self.seq += 1
        self.events.append(event)
        return event

    def run(self):
        while True:
            live = [e for e in self.events if not e.done and not e.cancelled]
            if not live:
                return
            event = min(live, key=lambda e: (e.time, e.seq))
            event.done = True
            self.now = event.time
            event.action()


def _drive(sim, schedule, roots):
    """Run ``roots`` on either simulator; returns the execution log.

    Root i runs at its start time; it logs itself, schedules a child at
    ``now + d`` for each delay (children log and schedule nothing), and
    optionally cancels another root through its handle — exercising the
    same-cycle path (d == 0), the heap path (d > 0), and cancellation of
    both pending and already-run events.
    """
    log = []
    handles = []

    def make_root(i, delays, target, do_cancel):
        def run_root():
            log.append(("r", i, sim.now))
            for k, d in enumerate(delays):
                child_time = sim.now + d
                schedule(child_time, lambda i=i, k=k: log.append(("c", i, k, sim.now)))
            if do_cancel and handles:
                handles[target % len(handles)].cancel()

        return run_root

    for i, (start, delays, target, do_cancel) in enumerate(roots):
        handles.append(schedule(start, make_root(i, delays, target, do_cancel)))
    sim.run()
    return log


@settings(max_examples=200, deadline=None)
@given(st.lists(_root, min_size=1, max_size=12))
def test_kernel_matches_reference_order(roots):
    ref = _RefSim()
    ref_log = _drive(ref, ref.schedule, roots)

    sim = Simulator()
    sim_log = _drive(sim, sim.call_at, roots)

    assert sim_log == ref_log
