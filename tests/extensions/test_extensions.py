"""Tests for the §6 extensions: profiling, FIFO locks, update mode."""

from __future__ import annotations

import pytest

from repro.extensions import (
    fifo_grants,
    make_fifo_block,
    make_update_block,
    overflow_worker_sets,
    profile_blocks,
    updates_propagated,
)
from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.workloads import HotSpotWorkload
from repro.workloads.base import Workload


def make_machine(protocol="limitless", **overrides):
    defaults = dict(
        n_procs=4,
        protocol=protocol,
        pointers=2,
        ts=30,
        cache_lines=256,
        segment_bytes=1 << 16,
        max_cycles=4_000_000,
    )
    defaults.update(overrides)
    return AlewifeMachine(AlewifeConfig(**defaults))


class _SharedVarWorkload(Workload):
    """Readers poll a variable; the writer rewrites it several times."""

    name = "sharedvar"

    def __init__(self, writes=3):
        self.writes = writes
        self.addr = None
        self.seen: list[int] = []

    def build(self, machine):
        var = machine.allocator.alloc_scalar("shared.var", home=0)
        self.addr = var.base
        n = machine.config.n_procs

        def writer():
            for i in range(1, self.writes + 1):
                yield ops.store(var.base, i)
                yield ops.think(120)

        def reader(p):
            for _ in range(3 * self.writes):
                value = yield ops.load(var.base)
                self.seen.append(value)
                yield ops.think(35)

        programs = {0: [writer()]}
        for p in range(1, n):
            programs[p] = [reader(p)]
        return programs


class TestProfiling:
    def test_records_transactions_for_flagged_blocks(self):
        machine = make_machine()
        workload = _SharedVarWorkload()
        programs_built = workload.build(machine)
        profiler = profile_blocks(machine, [workload.addr])
        for proc_id, gens in programs_built.items():
            for gen in gens:
                machine.nodes[proc_id].processor.add_thread(gen)
        for node in machine.nodes:
            node.start()
        machine.sim.run()
        assert profiler.records, "no transactions profiled"
        opcodes = {r.opcode for r in profiler.records}
        assert "RREQ" in opcodes and "WREQ" in opcodes
        assert profiler.worker_set(machine.space.block_of(workload.addr)) >= {1}

    def test_requires_software_protocol(self):
        machine = make_machine(protocol="fullmap")
        with pytest.raises(ValueError):
            profile_blocks(machine, [machine.space.address(0, 0x100)])

    def test_overflow_worker_sets_feedback(self):
        machine = make_machine(pointers=1)
        machine.run(HotSpotWorkload(rounds=2))
        report = overflow_worker_sets(machine)
        assert report, "no overflowed blocks reported"
        assert max(report.values()) >= 3


class _LockStormWorkload(Workload):
    """All processors fight for one test-and-set lock."""

    name = "lockstorm"

    def __init__(self):
        self.addr = None
        self.holders: list[int] = []

    def build(self, machine):
        lock = machine.allocator.alloc_scalar("fifo.lock", home=0)
        self.addr = lock.base

        def program(p):
            got = False
            while not got:
                old = yield ops.test_and_set(lock.base)
                if old == 0:
                    got = True
                else:
                    yield ops.think(15)
            self.holders.append(p)
            yield ops.think(40)
            yield ops.store(lock.base, 0)

        return {p: [program(p)] for p in range(machine.config.n_procs)}


class TestFifoLock:
    def test_all_contenders_eventually_acquire(self):
        machine = make_machine(n_procs=6)
        workload = _LockStormWorkload()
        programs = workload.build(machine)
        make_fifo_block(machine, workload.addr)
        for proc_id, gens in programs.items():
            for gen in gens:
                machine.nodes[proc_id].processor.add_thread(gen)
        for node in machine.nodes:
            node.start()
        machine.sim.run()
        assert sorted(workload.holders) == list(range(6))
        assert fifo_grants(machine, machine.space.block_of(workload.addr)) > 0

    def test_requires_software_protocol(self):
        machine = make_machine(protocol="limited")
        with pytest.raises(ValueError):
            make_fifo_block(machine, machine.space.address(0, 0x100))


class TestUpdateMode:
    def test_readers_see_new_values_without_invalidation(self):
        machine = make_machine(n_procs=4)
        workload = _SharedVarWorkload(writes=3)
        programs = workload.build(machine)
        blk = make_update_block(machine, workload.addr)
        for proc_id, gens in programs.items():
            for gen in gens:
                machine.nodes[proc_id].processor.add_thread(gen)
        for node in machine.nodes:
            node.start()
        machine.sim.run()
        # updates reached the readers' caches (they may finish polling
        # before the writer's last store; memory convergence is checked in
        # the next test)
        assert max(workload.seen) >= 2
        assert updates_propagated(machine, blk) > 0
        # readers were never invalidated for this block
        assert machine.nodes[1].counters.get("cache.updates_absorbed") > 0

    def test_memory_converges_to_last_write(self):
        machine = make_machine(n_procs=4)
        workload = _SharedVarWorkload(writes=2)
        programs = workload.build(machine)
        make_update_block(machine, workload.addr)
        for proc_id, gens in programs.items():
            for gen in gens:
                machine.nodes[proc_id].processor.add_thread(gen)
        for node in machine.nodes:
            node.start()
        machine.sim.run()
        assert machine.nodes[0].memory.peek_word(workload.addr) == 2

    def test_requires_software_protocol(self):
        machine = make_machine(protocol="chained")
        with pytest.raises(ValueError):
            make_update_block(machine, machine.space.address(0, 0x100))
