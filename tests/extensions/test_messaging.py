"""Tests for IPI interprocessor messaging (§4.2)."""

from __future__ import annotations

import pytest

from repro.extensions import open_mailboxes, send_message
from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.workloads.base import Workload


def make_machine(protocol="limitless", **overrides):
    defaults = dict(
        n_procs=4,
        protocol=protocol,
        pointers=2,
        ts=30,
        cache_lines=256,
        segment_bytes=1 << 16,
        max_cycles=2_000_000,
    )
    defaults.update(overrides)
    return AlewifeMachine(AlewifeConfig(**defaults))


class _IdleWorkload(Workload):
    """Processors just think, leaving room for messages to interrupt."""

    name = "idle"

    def build(self, machine):
        def program(p):
            yield ops.think(600)

        return {p: [program(p)] for p in range(machine.config.n_procs)}


def run_with_messages(machine, sends):
    mailboxes = open_mailboxes(machine)
    programs = _IdleWorkload().build(machine)
    for proc_id, gens in programs.items():
        for gen in gens:
            machine.nodes[proc_id].processor.add_thread(gen)
    for node in machine.nodes:
        node.start()
    for at, kwargs in sends:
        machine.sim.call_at(at, lambda kw=kwargs: send_message(machine, **kw))
    machine.sim.run()
    return mailboxes


class TestMessaging:
    @pytest.mark.parametrize("protocol", ["limitless", "fullmap", "trap_always"])
    def test_message_delivered(self, protocol):
        machine = make_machine(protocol=protocol)
        mailboxes = run_with_messages(
            machine, [(10, dict(src=0, dst=2, tag=7))]
        )
        assert len(mailboxes[2].messages) == 1
        message = mailboxes[2].messages[0]
        assert message.src == 0
        assert message.meta["tag"] == 7

    def test_block_transfer_stores_back(self):
        machine = make_machine()
        target = machine.allocator.alloc_words("msg.buf", 4, home=3)
        mailboxes = run_with_messages(
            machine,
            [
                (
                    10,
                    dict(
                        src=1,
                        dst=3,
                        payload_words=[11, 22, 33, 44],
                        store_to=target.base,
                    ),
                )
            ],
        )
        assert mailboxes[3].messages[0].data_words == [11, 22, 33, 44]
        assert machine.nodes[3].memory.peek_word(target.word(2)) == 33

    def test_store_to_must_be_homed_at_receiver(self):
        machine = make_machine()
        target = machine.allocator.alloc_words("msg.buf", 4, home=1)
        with pytest.raises(ValueError):
            send_message(
                machine, src=0, dst=3, payload_words=[1], store_to=target.base
            )

    def test_payload_bounded_by_block(self):
        machine = make_machine()
        with pytest.raises(ValueError):
            send_message(machine, src=0, dst=1, payload_words=list(range(20)))

    def test_messages_charge_receiver_trap_time(self):
        machine = make_machine(protocol="fullmap")
        run_with_messages(
            machine,
            [(10 + i, dict(src=0, dst=1)) for i in range(4)],
        )
        assert machine.nodes[1].processor.traps_taken == 4
        assert machine.nodes[1].processor.trap_cycles == 100

    def test_callback_fires(self):
        machine = make_machine()
        mailboxes = open_mailboxes(machine)
        got = []
        mailboxes[2].on_message = lambda m: got.append(m.src)
        programs = _IdleWorkload().build(machine)
        for proc_id, gens in programs.items():
            for gen in gens:
                machine.nodes[proc_id].processor.add_thread(gen)
        for node in machine.nodes:
            node.start()
        machine.sim.call_at(5, lambda: send_message(machine, src=3, dst=2))
        machine.sim.run()
        assert got == [3]

    def test_coexists_with_coherence_traffic(self):
        """Messages and protocol packets share the NIC without interfering."""
        machine = make_machine()
        mailboxes = open_mailboxes(machine)
        shared = machine.allocator.alloc_scalar("msg.shared", home=0)

        class Mixed(Workload):
            name = "mixed"

            def build(self, m):
                def program(p):
                    for i in range(4):
                        yield ops.fetch_add(shared.base, 1)
                        yield ops.think(30)

                return {p: [program(p)] for p in range(m.config.n_procs)}

        programs = Mixed().build(machine)
        for proc_id, gens in programs.items():
            for gen in gens:
                machine.nodes[proc_id].processor.add_thread(gen)
        for node in machine.nodes:
            node.start()
        for i in range(6):
            machine.sim.call_at(
                20 * i + 5, lambda i=i: send_message(machine, src=i % 4, dst=0, n=i)
            )
        machine.sim.run()
        assert len(mailboxes[0].messages) == 6
        value = machine.nodes[0].memory.peek_word(shared.base)
        blk = machine.space.block_of(shared.base)
        for node in machine.nodes:
            line = node.cache_array.lookup(blk)
            if line is not None and line.state.name == "READ_WRITE":
                value = line.data.words[machine.space.word_in_block(shared.base)]
        assert value == 16
