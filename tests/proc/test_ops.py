"""Tests for the program operation vocabulary."""

from __future__ import annotations

import pytest

from repro.proc import ops


class TestConstructors:
    def test_think(self):
        assert ops.think(5) == ("think", 5)
        with pytest.raises(ValueError):
            ops.think(-1)

    def test_load_store(self):
        assert ops.load(0x40) == ("load", 0x40)
        assert ops.store(0x40, 9) == ("store", 0x40, 9)

    def test_fetch_add_semantics(self):
        kind, addr, fn = ops.fetch_add(0x40, 3)
        assert kind == "rmw"
        assert addr == 0x40
        assert fn(10) == 13

    def test_test_and_set_semantics(self):
        _, _, fn = ops.test_and_set(0x40)
        assert fn(0) == 1
        assert fn(1) == 1

    def test_rmw_custom_function(self):
        _, _, fn = ops.rmw(0x40, lambda v: v * 2)
        assert fn(21) == 42

    def test_fence(self):
        assert ops.fence() == ("fence",)

    def test_switch_hint(self):
        assert ops.switch_hint() == ("switch_hint",)
