"""Tests for the SPARCLE-like processor model."""

from __future__ import annotations

import pytest

from repro.cache.cache import CacheArray
from repro.cache.controller import CacheController
from repro.coherence.fullmap import FullMapController
from repro.mem.address import AddressSpace
from repro.mem.memory import MainMemory
from repro.network.fabric import IdealNetwork
from repro.network.interface import NetworkInterface
from repro.proc import ops
from repro.proc.processor import ContextState, Processor
from repro.sim.kernel import SimulationError, Simulator


class Rig:
    """Two nodes: node 0 = remote home, node 1 = processor under test."""

    def __init__(self, contexts=4, switch_cycles=11):
        self.sim = Simulator(max_cycles=2_000_000)
        self.space = AddressSpace(n_nodes=2, block_bytes=16, segment_bytes=1 << 16)
        self.net = IdealNetwork(self.sim, 2, latency=5)
        self.nics = [NetworkInterface(self.sim, i, self.net) for i in range(2)]
        self.memories = [MainMemory(self.space, i) for i in range(2)]
        self.dirs = [
            FullMapController(self.sim, i, self.space, self.memories[i], self.nics[i])
            for i in range(2)
        ]
        self.caches = [
            CacheController(
                self.sim, i, self.space, CacheArray(self.space, 64), self.nics[i]
            )
            for i in range(2)
        ]
        self.cpu = Processor(
            self.sim,
            1,
            self.space,
            self.caches[1],
            switch_cycles=switch_cycles,
            max_contexts=contexts,
        )

    def remote(self, index=0):
        return self.space.address(0, 0x100 + index * 16)

    def local(self, index=0):
        return self.space.address(1, 0x100 + index * 16)

    def run(self):
        self.cpu.start()
        self.sim.run()
        assert self.cpu.done, "program did not finish"


class TestExecution:
    def test_empty_processor_finishes_immediately(self):
        rig = Rig()
        rig.run()
        assert rig.cpu.finish_time == 0

    def test_think_advances_time(self):
        rig = Rig()

        def program():
            yield ops.think(100)

        rig.cpu.add_thread(program())
        rig.run()
        assert rig.cpu.finish_time == 100
        assert rig.cpu.busy_cycles == 100

    def test_load_returns_value_to_program(self):
        rig = Rig()
        rig.memories[0].poke_word(rig.remote(), 42)
        seen = []

        def program():
            value = yield ops.load(rig.remote())
            seen.append(value)

        rig.cpu.add_thread(program())
        rig.run()
        assert seen == [42]

    def test_store_then_load(self):
        rig = Rig()
        seen = []

        def program():
            yield ops.store(rig.remote(), 7)
            seen.append((yield ops.load(rig.remote())))

        rig.cpu.add_thread(program())
        rig.run()
        assert seen == [7]

    def test_fetch_add_yields_old_value(self):
        rig = Rig()
        seen = []

        def program():
            seen.append((yield ops.fetch_add(rig.remote(), 5)))
            seen.append((yield ops.fetch_add(rig.remote(), 5)))

        rig.cpu.add_thread(program())
        rig.run()
        assert seen == [0, 5]

    def test_unknown_op_raises(self):
        rig = Rig()

        def program():
            yield ("dance",)

        rig.cpu.add_thread(program())
        rig.cpu.start()
        with pytest.raises(SimulationError):
            rig.sim.run()

    def test_ops_executed_counted(self):
        rig = Rig()

        def program():
            yield ops.think(1)
            yield ops.load(rig.local())

        ctx = rig.cpu.add_thread(program())
        rig.run()
        assert ctx.ops_executed == 2
        assert ctx.state is ContextState.DONE


class TestContextSwitching:
    def test_remote_miss_switches_to_ready_context(self):
        rig = Rig()

        def misser():
            yield ops.load(rig.remote())

        def thinker():
            yield ops.think(5)

        rig.cpu.add_thread(misser())
        rig.cpu.add_thread(thinker())
        rig.run()
        assert rig.cpu.counters.get("cpu.context_switches") >= 1
        assert rig.cpu.switch_charged >= 11

    def test_local_miss_holds_pipeline(self):
        rig = Rig()

        def misser():
            yield ops.load(rig.local())

        def thinker():
            yield ops.think(5)

        rig.cpu.add_thread(misser())
        rig.cpu.add_thread(thinker())
        rig.run()
        assert rig.cpu.counters.get("cpu.local_stalls") == 1

    def test_single_context_resume_has_no_switch_cost(self):
        rig = Rig()

        def program():
            yield ops.load(rig.remote())

        rig.cpu.add_thread(program())
        rig.run()
        assert rig.cpu.switch_charged == 0

    def test_out_of_contexts(self):
        def empty():
            return
            yield  # pragma: no cover

        rig = Rig(contexts=1)
        rig.cpu.add_thread(empty())
        with pytest.raises(SimulationError):
            rig.cpu.add_thread(empty())

    def test_non_generator_program_rejected(self):
        rig = Rig()
        with pytest.raises(SimulationError, match="generators"):
            rig.cpu.add_thread(iter([]))

    def test_interleaving_makes_progress_on_all_contexts(self):
        rig = Rig()
        finished = []

        def program(n):
            for i in range(3):
                yield ops.load(rig.remote(n * 4 + i))
            finished.append(n)

        for n in range(4):
            rig.cpu.add_thread(program(n))
        rig.run()
        assert sorted(finished) == [0, 1, 2, 3]


class TestTrapEngine:
    def test_trap_delays_execution(self):
        rig = Rig()

        def program():
            yield ops.think(10)
            yield ops.think(10)

        rig.cpu.add_thread(program())
        rig.cpu.start()
        rig.sim.call_at(5, lambda: rig.cpu.request_trap(100, lambda: None))
        rig.sim.run()
        assert rig.cpu.done
        assert rig.cpu.finish_time >= 105
        assert rig.cpu.trap_cycles == 100

    def test_traps_serialize(self):
        rig = Rig()
        done_at = []
        rig.cpu.request_trap(50, lambda: done_at.append(rig.sim.now))
        rig.cpu.request_trap(50, lambda: done_at.append(rig.sim.now))
        rig.sim.run()
        assert done_at == [50, 100]
        assert rig.cpu.traps_taken == 2

    def test_stall_cycle_accounting(self):
        rig = Rig()

        def program():
            yield ops.think(20)
            yield ops.load(rig.remote())

        rig.cpu.add_thread(program())
        rig.run()
        total = rig.cpu.finish_time
        assert total == (
            rig.cpu.busy_cycles
            + rig.cpu.switch_charged
            + rig.cpu.trap_cycles
            + rig.cpu.stall_cycles()
        )
        assert 0 < rig.cpu.utilization() <= 1.0
