"""Tests for the weakly-ordered memory model (store buffer + fences)."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine, run_experiment
from repro.proc import ops
from repro.workloads import (
    MigratoryWorkload,
    MultigridWorkload,
    ProducerConsumerWorkload,
    WeatherWorkload,
)
from repro.workloads.base import Workload

from .test_processor import Rig


def wo_rig(**kw):
    rig = Rig(**kw)
    rig.cpu.memory_model = "wo"
    return rig


class TestStoreBuffer:
    def test_store_does_not_block_the_pipeline(self):
        rig = wo_rig()
        order = []

        def program():
            yield ops.store(rig.remote(), 1)  # remote store, buffered
            order.append(("continued", rig.sim.now))
            yield ops.think(1)

        rig.cpu.add_thread(program())
        rig.run()
        # the program continued long before a remote round trip completed
        assert order and order[0][1] <= 3
        assert rig.cpu.counters.get("cpu.wo_stores_buffered") == 1

    def test_load_to_same_block_waits_for_own_store(self):
        rig = wo_rig()
        seen = []

        def program():
            yield ops.store(rig.remote(), 77)
            seen.append((yield ops.load(rig.remote())))

        rig.cpu.add_thread(program())
        rig.run()
        assert seen == [77]

    def test_load_to_other_block_proceeds(self):
        rig = wo_rig()
        rig.memories[1].poke_word(rig.local(), 5)
        seen = []

        def program():
            yield ops.store(rig.remote(), 1)
            seen.append(((yield ops.load(rig.local())), rig.sim.now))

        rig.cpu.add_thread(program())
        rig.run()
        value, when = seen[0]
        assert value == 5
        assert when < 15  # did not wait for the remote store round trip

    def test_fence_drains_all_stores(self):
        rig = wo_rig()
        marks = []

        def program():
            yield ops.store(rig.remote(0), 1)
            yield ops.store(rig.remote(1), 2)
            yield ops.fence()
            marks.append(rig.sim.now)

        rig.cpu.add_thread(program())
        rig.run()
        assert rig.memories[0].peek_word(rig.remote(0)) >= 0  # landed somewhere
        assert marks[0] > 10  # fence actually waited for the round trips
        assert rig.cpu.counters.get("cpu.fence_stalls") == 1

    def test_rmw_is_an_implicit_fence(self):
        rig = wo_rig()
        olds = []

        def program():
            yield ops.store(rig.remote(), 10)
            olds.append((yield ops.fetch_add(rig.remote(), 1)))

        rig.cpu.add_thread(program())
        rig.run()
        assert olds == [10]  # the buffered store landed before the atomic

    def test_store_buffer_capacity_blocks(self):
        rig = wo_rig()
        rig.cpu.store_buffer = 2

        def program():
            for i in range(5):
                yield ops.store(rig.remote(i), i)
            yield ops.fence()

        rig.cpu.add_thread(program())
        rig.run()
        assert rig.cpu.counters.get("cpu.store_buffer_full") > 0

    def test_retire_waits_for_buffered_stores(self):
        rig = wo_rig()

        def program():
            yield ops.store(rig.remote(), 9)
            # program ends with the store still in flight

        rig.cpu.add_thread(program())
        rig.run()
        assert rig.memories[0].peek_word(rig.remote()) in (0, 9)
        # the machine drained: the store completed before retirement
        assert rig.caches[1].idle()

    def test_sc_mode_rejects_nothing_but_blocks(self):
        rig = Rig()  # default sc

        def program():
            yield ops.store(rig.remote(), 3)
            yield ops.fence()  # legal no-op under SC

        rig.cpu.add_thread(program())
        rig.run()
        assert rig.cpu.counters.get("cpu.wo_stores_buffered") == 0

    def test_unknown_memory_model_rejected(self):
        with pytest.raises(ValueError):
            AlewifeConfig(memory_model="tso")


class _MessagePassing(Workload):
    """The canonical weak-ordering litmus: data then flag, with a fence."""

    name = "litmus"

    def __init__(self):
        self.observed: list[int] = []

    def build(self, machine):
        data = machine.allocator.alloc_scalar("litmus.data", home=0)
        flag = machine.allocator.alloc_scalar("litmus.flag", home=1)

        def writer():
            yield ops.store(data.base, 42)
            yield ops.fence()
            yield ops.store(flag.base, 1)

        def reader():
            while True:
                value = yield ops.load(flag.base)
                if value:
                    break
                yield ops.think(8)
            self.observed.append((yield ops.load(data.base)))

        return {0: [writer()], 1: [reader()]}


class TestLitmus:
    @pytest.mark.parametrize("seed", [1, 7, 23, 99])
    def test_message_passing_with_fence_is_safe(self, seed):
        workload = _MessagePassing()
        run_experiment(
            AlewifeConfig(
                n_procs=2,
                memory_model="wo",
                cache_lines=128,
                segment_bytes=1 << 16,
                seed=seed,
                max_cycles=2_000_000,
            ),
            workload,
        )
        assert workload.observed == [42]


class TestWorkloadsUnderWeakOrdering:
    @pytest.mark.parametrize(
        "workload",
        [
            WeatherWorkload(iterations=2),
            MultigridWorkload(levels=(1, 1)),
            MigratoryWorkload(rounds=1),
            ProducerConsumerWorkload(epochs=2),
        ],
        ids=["weather", "multigrid", "migratory", "pc"],
    )
    @pytest.mark.parametrize("protocol", ["fullmap", "limitless"])
    def test_complete_and_audit(self, workload, protocol):
        stats = run_experiment(
            AlewifeConfig(
                n_procs=8,
                protocol=protocol,
                pointers=2,
                memory_model="wo",
                cache_lines=512,
                segment_bytes=1 << 17,
                max_cycles=8_000_000,
            ),
            workload,
        )
        assert stats.counters.get("cpu.wo_stores_buffered") > 0

    def test_machine_runs_audit_clean_under_wo(self):
        machine = AlewifeMachine(
            AlewifeConfig(
                n_procs=4,
                memory_model="wo",
                cache_lines=128,
                segment_bytes=1 << 16,
                max_cycles=2_000_000,
            )
        )
        stats = machine.run(MigratoryWorkload(rounds=2))
        assert stats.entries_audited > 0
