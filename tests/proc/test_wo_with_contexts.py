"""Weak ordering combined with multi-context execution."""

from __future__ import annotations

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.workloads import LatencyToleranceWorkload
from repro.workloads.base import Workload


class _MixedThreads(Workload):
    """Two threads per processor: one streams buffered stores, one spins
    on a flag another processor releases — the combination exercises
    parking, store-buffer drain, and context switching together."""

    name = "mixed"

    def __init__(self):
        self.finishes: list[tuple[int, str]] = []

    def build(self, machine):
        n = machine.config.n_procs
        flags = [machine.allocator.alloc_scalar(f"f{p}", home=p) for p in range(n)]
        data = [machine.allocator.alloc_words(f"d{p}", 8, home=(p + 1) % n)
                for p in range(n)]

        def storer(p):
            for i in range(6):
                yield ops.store(data[p].word(i % 8), i)
            yield ops.fence()
            # release the next processor's waiter
            yield ops.store(flags[(p + 1) % n].base, 1)
            self.finishes.append((p, "storer"))

        def waiter(p):
            while True:
                value = yield ops.load(flags[p].base)
                if value:
                    break
                yield ops.think(9)
                yield ops.switch_hint()
            # after release, the releaser's fenced data must be visible
            got = yield ops.load(data[(p - 1) % n].word(5))
            assert got == 5, f"waiter {p} saw unfenced data {got}"
            self.finishes.append((p, "waiter"))

        return {p: [storer(p), waiter(p)] for p in range(n)}


class TestWeakOrderingWithContexts:
    def test_mixed_threads_complete_and_see_fenced_data(self):
        config = AlewifeConfig(
            n_procs=4,
            protocol="limitless",
            pointers=2,
            ts=30,
            memory_model="wo",
            cache_lines=256,
            segment_bytes=1 << 16,
            max_cycles=4_000_000,
        )
        workload = _MixedThreads()
        machine = AlewifeMachine(config)
        stats = machine.run(workload)
        assert len(workload.finishes) == 8
        assert stats.counters.get("cpu.wo_stores_buffered") > 0
        assert stats.counters.get("cpu.context_switches") > 0

    def test_latency_tolerance_still_wins_under_wo(self):
        def run(threads):
            config = AlewifeConfig(
                n_procs=8,
                protocol="fullmap",
                memory_model="wo",
                cache_lines=512,
                segment_bytes=1 << 17,
                max_cycles=4_000_000,
            )
            return (
                AlewifeMachine(config)
                .run(LatencyToleranceWorkload(threads_per_proc=threads,
                                              total_accesses_per_proc=32))
                .cycles
            )

        assert run(4) < run(1)
