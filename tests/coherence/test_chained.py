"""Tests for the chained-directory comparison model: serial invalidation."""

from __future__ import annotations

import pytest

from repro.coherence.chained import ChainedController
from repro.coherence.states import DirState

from .rig import ControllerRig


@pytest.fixture
def rig():
    return ControllerRig(ChainedController, n_nodes=8)


class TestSerialInvalidation:
    def _share(self, rig, blk, nodes):
        for node in nodes:
            rig.send(node, "RREQ", blk)
        rig.run()

    def test_only_first_target_invalidated_initially(self, rig):
        blk = rig.block()
        self._share(rig, blk, (1, 2, 3))
        rig.send(4, "WREQ", blk)
        rig.run()
        invs = [n for n in range(8) if rig.sent_to(n, "INV")]
        assert len(invs) == 1  # one element of the chain at a time

    def test_each_ack_advances_the_chain(self, rig):
        blk = rig.block()
        self._share(rig, blk, (1, 2, 3))
        rig.send(4, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        rig.send(1, "ACKC", blk, txn=txn)
        rig.run()
        assert rig.sent_to(2, "INV")
        assert not rig.sent_to(3, "INV")
        rig.send(2, "ACKC", blk, txn=txn)
        rig.run()
        assert rig.sent_to(3, "INV")
        assert not rig.sent_to(4, "WDATA")

    def test_completion_after_full_walk(self, rig):
        blk = rig.block()
        self._share(rig, blk, (1, 2, 3))
        rig.send(4, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        for node in (1, 2, 3):
            rig.send(node, "ACKC", blk, txn=txn)
            rig.run()
        assert rig.sent_to(4, "WDATA")
        entry = rig.entry(blk)
        assert entry.state is DirState.READ_WRITE
        assert entry.sharers == {4}

    def test_serial_latency_grows_with_worker_set(self):
        """The §1 criticism: write latency is linear in the chain length."""

        def write_latency(n_sharers):
            rig = ControllerRig(ChainedController, n_nodes=10, auto_ack=True)
            blk = rig.block()
            for node in range(1, 1 + n_sharers):
                rig.send(node, "RREQ", blk)
            rig.run()
            start = rig.sim.now
            rig.send(9, "WREQ", blk)
            rig.run()
            assert rig.sent_to(9, "WDATA")
            return rig.sim.now - start

        assert write_latency(6) > write_latency(2) > write_latency(1)

    def test_serial_steps_counted(self, rig):
        blk = rig.block()
        self._share(rig, blk, (1, 2, 3))
        rig.send(4, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        for node in (1, 2, 3):
            rig.send(node, "ACKC", blk, txn=txn)
            rig.run()
        assert rig.counters.get("chained.serial_steps") == 2

    def test_no_read_overflow_possible(self, rig):
        blk = rig.block()
        self._share(rig, blk, range(1, 8))
        assert rig.entry(blk).sharers == set(range(1, 8))
        assert rig.counters.get("dir.read_overflow") == 0

    def test_busy_during_walk(self, rig):
        blk = rig.block()
        self._share(rig, blk, (1, 2))
        rig.send(4, "WREQ", blk)
        rig.run()
        rig.send(5, "RREQ", blk)
        rig.run()
        assert rig.sent_to(5, "BUSY")

    def test_single_owner_write_is_one_step(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        rig.send(1, "UPDATE", blk, data=rig.data(9), txn=txn)
        rig.run()
        assert rig.sent_to(2, "WDATA")
        assert rig.counters.get("chained.serial_steps") == 0
