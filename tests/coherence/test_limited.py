"""Tests for the Dir_iNB limited directory: eviction on overflow."""

from __future__ import annotations

import pytest

from repro.coherence.limited import LimitedController
from repro.coherence.states import DirState

from .rig import ControllerRig


@pytest.fixture
def rig():
    return ControllerRig(LimitedController, pointer_capacity=2)


class TestOverflowEviction:
    def test_within_capacity_no_eviction(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.counters.get("dir.pointer_evictions") == 0
        assert rig.entry(blk).sharers == {1, 2}

    def test_overflow_evicts_one_pointer(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.counters.get("dir.pointer_evictions") == 1
        entry = rig.entry(blk)
        assert 3 in entry.sharers
        assert len(entry.sharers) == 2

    def test_fifo_victim_is_oldest(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
            rig.run()
        # node 1 arrived first -> evicted first
        assert rig.sent_to(1, "INV")
        assert not rig.sent_to(2, "INV")
        assert rig.entry(blk).sharers == {2, 3}

    def test_eviction_inv_has_no_txn(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        inv = rig.sent_to(1, "INV")[0]
        assert inv.meta.get("txn") is None

    def test_new_reader_still_gets_data(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.sent_to(3, "RDATA")

    def test_re_read_refreshes_fifo_position(self, rig):
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        rig.send(2, "RREQ", blk)
        rig.run()
        rig.send(1, "RREQ", blk)  # 1 becomes most recent
        rig.run()
        rig.send(3, "RREQ", blk)  # overflow: victim should now be 2
        rig.run()
        assert rig.sent_to(2, "INV")
        assert rig.entry(blk).sharers == {1, 3}

    def test_thrashing_counts_accumulate(self, rig):
        blk = rig.block()
        for round_no in range(3):
            for node in (1, 2, 3, 4):
                rig.send(node, "RREQ", blk)
            rig.run()
        assert rig.counters.get("dir.pointer_evictions") >= 6

    def test_local_bit_not_evictable(self, rig):
        blk = rig.block()
        rig.send(0, "RREQ", blk)  # home uses the Local Bit
        rig.run()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.local_bit  # survives pointer thrashing
        assert not rig.sent_to(0, "INV")


class TestEvictionRaces:
    def test_evicted_cache_ack_is_stray(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(1, "ACKC", blk, txn=None)  # the eviction acknowledgment
        rig.run()
        assert rig.counters.get("dir.stray_dropped") == 1
        assert rig.entry(blk).state is DirState.READ_ONLY

    def test_write_after_thrash_invalidate_current_set(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(4, "WREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        # Only the current pointer set {2, 3} is invalidated.
        assert entry.ack_waiting == {2, 3}


class TestConfiguration:
    def test_requires_at_least_one_pointer(self):
        with pytest.raises(ValueError):
            ControllerRig(LimitedController, pointer_capacity=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ControllerRig(
                LimitedController, pointer_capacity=2, victim_policy="lifo"
            )

    def test_random_policy_uses_rng(self):
        from repro.sim.rng import DeterministicRng

        rig = ControllerRig(
            LimitedController,
            pointer_capacity=2,
            victim_policy="random",
            rng=DeterministicRng(3),
        )
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.counters.get("dir.pointer_evictions") == 1
