"""Hand-crafted race interleavings beyond Table 2.

Each test constructs a specific crossing the paper's specification glosses
over and checks the documented resolution (controller.py's race notes).
"""

from __future__ import annotations

import pytest

from repro.coherence.fullmap import FullMapController
from repro.coherence.limited import LimitedController
from repro.coherence.limitless import (
    FreeRunningTrapEngine,
    LimitLessController,
    LimitLessSoftware,
)
from repro.coherence.states import DirState, MetaState

from .rig import ControllerRig


class TestEvictionRaces:
    def test_eviction_ack_vs_fresh_transaction(self):
        """An eviction INV's ack arrives while a NEW write round is open
        against the same node: the txn id keeps the rounds separate."""
        rig = ControllerRig(LimitedController, pointer_capacity=2)
        blk = rig.block()
        for node in (1, 2, 3):  # 3 overflows: node 1 evicted, INV(None) sent
            rig.send(node, "RREQ", blk)
        rig.run()
        # node 1 re-reads (allowed: directory re-adds it, evicting 2)
        rig.send(1, "RREQ", blk)
        rig.run()
        assert rig.entry(blk).holds(1)
        # a writer opens a round against {1, 3}
        rig.send(4, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        # the STALE eviction acks (txn=None) arrive mid-round: ignored
        rig.send(1, "ACKC", blk, txn=None)
        rig.send(2, "ACKC", blk, txn=None)
        rig.run()
        assert rig.entry(blk).state is DirState.WRITE_TRANSACTION
        # the real acks complete it
        rig.send(1, "ACKC", blk, txn=txn)
        rig.send(3, "ACKC", blk, txn=txn)
        rig.run()
        assert rig.entry(blk).state is DirState.READ_WRITE
        assert rig.sent_to(4, "WDATA")

    def test_silently_evicted_sharer_is_invalidated_harmlessly(self):
        rig = ControllerRig(FullMapController, auto_ack=True)
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        # node 1 silently dropped its clean copy; pointer is stale.
        rig.send(2, "WREQ", blk)
        rig.run()
        # auto-ack answered the INV as a copy-less cache would: complete.
        assert rig.entry(blk).state is DirState.READ_WRITE
        assert rig.sent_to(2, "WDATA")


class TestOwnershipRaces:
    def test_owner_replacement_crosses_read_transaction(self):
        """RW owner evicts just as a reader arrives: the directory takes
        the REPM data and answers the reader from memory."""
        rig = ControllerRig(FullMapController)
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "RREQ", blk)  # opens READ_TRANSACTION, INV -> 1
        rig.run()
        assert rig.entry(blk).state is DirState.READ_TRANSACTION
        rig.send(1, "REPM", blk, data=rig.data(123))  # crossing writeback
        rig.run()
        assert rig.entry(blk).state is DirState.READ_ONLY
        rdata = rig.sent_to(2, "RDATA")
        assert rdata and rdata[0].data.words[0] == 123
        # the owner's late ACKC for the INV (no copy left) is then stray
        rig.send(1, "ACKC", blk, txn=rig.entry(blk).txn)
        rig.run()
        assert rig.counters.get("dir.stray_dropped") == 1
        assert rig.entry(blk).state is DirState.READ_ONLY

    def test_back_to_back_ownership_steals(self):
        """Writers trade the block: every handoff moves the new data."""
        rig = ControllerRig(FullMapController)
        blk = rig.block()
        value = 0
        owner = 1
        rig.send(owner, "WREQ", blk)
        rig.run()
        for thief in (2, 3, 4, 1):
            rig.send(thief, "WREQ", blk)
            rig.run()
            txn = rig.entry(blk).txn
            value += 1
            rig.send(owner, "UPDATE", blk, data=rig.data(value), txn=txn)
            rig.run()
            assert rig.entry(blk).state is DirState.READ_WRITE
            assert rig.last_to(thief).data.words[0] == value
            owner = thief

    def test_reader_storm_against_single_owner(self):
        rig = ControllerRig(FullMapController, n_nodes=6)
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        # all other nodes read at once: one wins the READ_TRANSACTION,
        # the rest get BUSY and must retry (here: re-sent manually)
        for node in (2, 3, 4, 5):
            rig.send(node, "RREQ", blk)
        rig.run()
        busied = [n for n in (2, 3, 4, 5) if rig.sent_to(n, "BUSY")]
        assert len(busied) == 3
        txn = rig.entry(blk).txn
        rig.send(1, "UPDATE", blk, data=rig.data(5), txn=txn)
        rig.run()
        for node in busied:
            rig.send(node, "RREQ", blk)
        rig.run()
        for node in (2, 3, 4, 5):
            assert rig.sent_to(node, "RDATA")
        assert rig.entry(blk).sharers == {2, 3, 4, 5}


class TestLimitlessInterlockRaces:
    def _rig(self, ts=200, pointers=1):
        rig = ControllerRig(
            LimitLessController, pointer_capacity=pointers, n_nodes=8, auto_ack=True
        )
        engine = FreeRunningTrapEngine(rig.sim)
        software = LimitLessSoftware(rig.controller, rig.nics[0], engine, ts=ts)
        return rig, software

    def test_write_queued_behind_overflow_trap(self):
        """A WREQ lands while the overflow trap is still running: it must
        queue, then terminate software handling when replayed."""
        rig, software = self._rig()
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        # overflow (trap runs 200 cycles) and a write racing into it
        rig.send(2, "RREQ", blk)
        rig.send(3, "WREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.meta is MetaState.NORMAL  # write termination ran
        assert entry.state is DirState.READ_WRITE
        assert rig.sent_to(3, "WDATA")
        assert blk not in software.vectors
        for node in (1, 2):
            assert rig.sent_to(node, "INV")

    def test_reads_queued_during_interlock_all_serviced(self):
        rig, software = self._rig(ts=300)
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        for node in (2, 3, 4, 5, 6):
            rig.send(node, "RREQ", blk)
        rig.run()
        for node in (1, 2, 3, 4, 5, 6):
            assert rig.sent_to(node, "RDATA"), f"node {node} starved"
        assert rig.counters.get("dir.interlocked") >= 1

    def test_interleaved_overflow_write_overflow(self):
        """Overflow -> write termination -> fresh overflow reuses a new
        vector; the old one must not leak stale members."""
        rig, software = self._rig()
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
            rig.run()
        rig.send(3, "WREQ", blk)
        rig.run()
        assert rig.entry(blk).state is DirState.READ_WRITE
        # second generation of sharers
        for node in (4, 5):
            rig.send(node, "RREQ", blk)
            rig.run()
        assert software.vectors.get(blk, set()) <= {3, 4, 5}
        rig.send(6, "WREQ", blk)
        rig.run()
        # only current-generation sharers were invalidated
        assert not rig.sent_to(1, "INV") or len(rig.sent_to(1, "INV")) == 1
        assert rig.sent_to(6, "WDATA")


class TestBusyStorms:
    def test_competing_writers_serialize(self):
        rig = ControllerRig(FullMapController, n_nodes=6, auto_ack=True)
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        # every reader upgrades at once
        for node in (1, 2, 3):
            rig.send(node, "WREQ", blk)
        rig.run()
        # exactly one won; the others saw BUSY
        winners = [n for n in (1, 2, 3) if rig.sent_to(n, "WDATA")]
        busied = [n for n in (1, 2, 3) if rig.sent_to(n, "BUSY")]
        assert len(winners) == 1
        assert len(busied) == 2
        assert rig.entry(blk).state is DirState.READ_WRITE
