"""Tests for directory entries and the protocol registry."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.coherence.entry import Directory, DirectoryEntry
from repro.coherence.registry import (
    PROTOCOLS,
    SOFTWARE_PROTOCOLS,
    controller_class,
    protocol_names,
)
from repro.coherence.states import DirState, MetaState


class TestDirectoryEntry:
    def test_local_bit_instead_of_pointer(self):
        entry = DirectoryEntry(block=0x100, home=3)
        entry.add_sharer(3)
        assert entry.local_bit
        assert entry.pointers_used() == 0
        assert entry.all_copy_holders() == {3}

    def test_remote_sharers_use_pointers(self):
        entry = DirectoryEntry(block=0x100, home=3)
        entry.add_sharer(1)
        entry.add_sharer(2)
        assert entry.pointers_used() == 2

    def test_drop_sharer_handles_both(self):
        entry = DirectoryEntry(block=0x100, home=3)
        entry.add_sharer(3)
        entry.add_sharer(1)
        entry.drop_sharer(3)
        entry.drop_sharer(1)
        assert entry.all_copy_holders() == set()

    def test_peak_sharers_tracks_maximum(self):
        entry = DirectoryEntry(block=0x100, home=0)
        for node in (1, 2, 3):
            entry.add_sharer(node)
        entry.clear_sharers()
        entry.add_sharer(1)
        assert entry.peak_sharers == 3

    def test_transaction_ack_matching(self):
        entry = DirectoryEntry(block=0x100, home=0)
        txn = entry.begin_transaction(5, {1, 2})
        assert not entry.ack_from(3, txn)      # not awaited
        assert not entry.ack_from(1, txn - 1)  # stale round
        assert entry.ack_from(1, txn)
        assert not entry.ack_from(1, txn)      # double ack
        assert entry.ack_from(2, None)         # REPM-style, no txn echo
        assert entry.acks_outstanding == 0

    def test_txn_increments_per_transaction(self):
        entry = DirectoryEntry(block=0x100, home=0)
        t1 = entry.begin_transaction(1, {2})
        t2 = entry.begin_transaction(1, {2})
        assert t2 == t1 + 1

    def test_idle_conditions(self):
        entry = DirectoryEntry(block=0x100, home=0)
        assert entry.idle()
        entry.state = DirState.WRITE_TRANSACTION
        assert not entry.idle()
        entry.state = DirState.READ_ONLY
        entry.meta = MetaState.TRANS_IN_PROGRESS
        assert not entry.idle()
        entry.meta = MetaState.TRAP_ON_WRITE
        assert entry.idle()  # software mode at rest is quiescent

    @given(nodes=st.lists(st.integers(min_value=0, max_value=31), max_size=40))
    def test_holders_match_membership(self, nodes):
        entry = DirectoryEntry(block=0x100, home=0)
        for node in nodes:
            entry.add_sharer(node)
        for node in set(nodes):
            assert entry.holds(node)
        assert entry.all_copy_holders() == set(nodes)


class TestDirectory:
    def test_entries_allocated_on_first_touch(self):
        directory = Directory(home=2)
        assert len(directory) == 0
        entry = directory.entry(0x200)
        assert entry.home == 2
        assert len(directory) == 1
        assert directory.entry(0x200) is entry


class TestRegistry:
    def test_all_protocols_present(self):
        assert set(protocol_names()) == {
            "chained",
            "fullmap",
            "limited",
            "limited_broadcast",
            "limitless",
            "limitless_approx",
            "trap_always",
        }

    def test_software_protocols_subset(self):
        assert SOFTWARE_PROTOCOLS <= set(PROTOCOLS)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_lookup(self, name):
        assert controller_class(name).protocol_name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            controller_class("snoopy")
