"""Tests for Dir_iB: the broadcast-on-overflow limited directory."""

from __future__ import annotations

import pytest

from repro.coherence.broadcast import BroadcastController
from repro.coherence.states import DirState

from .rig import ControllerRig


@pytest.fixture
def rig():
    return ControllerRig(BroadcastController, pointer_capacity=2, n_nodes=6)


class TestBroadcastBit:
    def test_within_capacity_behaves_like_limited(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.counters.get("dir.broadcast_armed") == 0
        assert rig.entry(blk).sharers == {1, 2}

    def test_overflow_grants_unrecorded_copy(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.counters.get("dir.broadcast_armed") == 1
        assert rig.counters.get("dir.unrecorded_grants") == 1
        assert rig.sent_to(3, "RDATA")
        # pointer set unchanged; node 3 holds a copy the directory can't name
        assert rig.entry(blk).sharers == {1, 2}
        assert rig.counters.get("dir.pointer_evictions") == 0

    def test_recorded_holders_is_any_when_armed(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.controller.recorded_holders(rig.entry(blk)) is None

    def test_write_broadcasts_to_every_cache(self, rig):
        blk = rig.block()
        for node in (1, 2, 3, 4):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(5, "WREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.state is DirState.WRITE_TRANSACTION
        # INV to every node except the writer — including never-sharers.
        assert entry.ack_waiting == {0, 1, 2, 3, 4}
        assert rig.counters.get("dir.broadcast_invalidates") == 1

    def test_broadcast_completes_and_disarms(self):
        rig = ControllerRig(
            BroadcastController, pointer_capacity=2, n_nodes=6, auto_ack=True
        )
        blk = rig.block()
        for node in (1, 2, 3, 4):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(5, "WREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.state is DirState.READ_WRITE
        assert rig.sent_to(5, "WDATA")
        # disarmed: the next overflow must re-arm
        assert rig.controller.recorded_holders(entry) == {5}

    def test_write_without_broadcast_stays_precise(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(3, "WREQ", blk)
        rig.run()
        assert rig.entry(blk).ack_waiting == {1, 2}
        assert rig.counters.get("dir.broadcast_invalidates") == 0

    def test_requires_a_pointer(self):
        with pytest.raises(ValueError):
            ControllerRig(BroadcastController, pointer_capacity=0)


class TestBroadcastEndToEnd:
    def test_full_machine_run_audits(self):
        from repro.machine import AlewifeConfig, run_experiment
        from repro.workloads import HotSpotWorkload, WeatherWorkload

        for wl in (HotSpotWorkload(rounds=3, write_period=1),
                   WeatherWorkload(iterations=2)):
            stats = run_experiment(
                AlewifeConfig(
                    n_procs=8,
                    protocol="limited_broadcast",
                    pointers=2,
                    cache_lines=256,
                    segment_bytes=1 << 16,
                    max_cycles=4_000_000,
                ),
                wl,
            )
            assert stats.counters.get("dir.broadcast_invalidates") > 0

    def test_label(self):
        from repro.machine import AlewifeConfig

        assert AlewifeConfig(protocol="limited_broadcast", pointers=2).label() == "Dir2B"
