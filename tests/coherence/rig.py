"""A scripted test rig for directory controllers.

Builds one real memory controller (on node 0) and fake caches on the other
nodes: injected packets travel over an ideal network, and everything the
controller sends back is captured per destination.  Conformance tests drive
exact Table 2 transitions through it.
"""

from __future__ import annotations

from repro.mem.address import AddressSpace
from repro.mem.memory import BlockData, MainMemory
from repro.network.fabric import IdealNetwork
from repro.network.interface import NetworkInterface
from repro.network.packet import OP_BY_NAME, Op, Packet, protocol_packet
from repro.sim.kernel import Simulator
from repro.stats.counters import Counters


class ControllerRig:
    """One controller under test plus scripted remote caches."""

    def __init__(
        self,
        controller_cls,
        *,
        n_nodes: int = 5,
        home: int = 0,
        auto_ack: bool = False,
        **controller_kwargs,
    ) -> None:
        self.sim = Simulator(max_cycles=1_000_000)
        self.space = AddressSpace(
            n_nodes=n_nodes, block_bytes=16, segment_bytes=1 << 16
        )
        self.home = home
        self.net = IdealNetwork(self.sim, n_nodes, latency=2)
        self.nics = [
            NetworkInterface(self.sim, i, self.net) for i in range(n_nodes)
        ]
        self.memory = MainMemory(self.space, home)
        self.counters = Counters()
        self.controller = controller_cls(
            self.sim,
            home,
            self.space,
            self.memory,
            self.nics[home],
            counters=self.counters,
            **controller_kwargs,
        )
        self.received: dict[int, list[Packet]] = {i: [] for i in range(n_nodes)}
        self.auto_ack = auto_ack
        self._rw_copies: dict[tuple[int, int], object] = {}
        for i in range(n_nodes):
            self.nics[i].set_cache_handler(self._make_cache_handler(i))
            if i != home:
                self.nics[i].set_memory_handler(
                    lambda p: (_ for _ in ()).throw(
                        AssertionError(f"unexpected memory packet {p}")
                    )
                )

    def _make_cache_handler(self, node: int):
        def handler(packet: Packet) -> None:
            self.received[node].append(packet)
            if not self.auto_ack:
                return
            if packet.opcode is Op.WDATA:
                # the node now owns a read-write copy
                self._rw_copies[(node, packet.address)] = packet.data.copy()
            elif packet.opcode is Op.INV:
                txn = packet.meta.get("txn")
                owned = self._rw_copies.pop((node, packet.address), None)
                if owned is not None:
                    # a real cache answers INV on a dirty-exclusive copy
                    # with the data (UPDATE), not a bare acknowledgment
                    self.send(node, "UPDATE", packet.address, data=owned, txn=txn)
                else:
                    self.send(node, "ACKC", packet.address, txn=txn)

        return handler

    # ------------------------------------------------------------------

    def block(self, index: int = 0) -> int:
        """A block address homed at the controller."""
        return self.space.address(self.home, 0x100 + index * self.space.block_bytes)

    def send(self, src: int, opcode: str, block: int, *, data=None, **meta) -> None:
        packet = protocol_packet(src, self.home, opcode, block, data=data, **meta)
        self.sim.call_at(self.sim.now, lambda: self.nics[src].send(packet))

    def run(self) -> None:
        self.sim.run()

    def sent_to(self, node: int, opcode: str | None = None) -> list[Packet]:
        packets = self.received[node]
        if opcode is None:
            return packets
        want = OP_BY_NAME.get(opcode, opcode)
        return [p for p in packets if p.opcode == want]

    def last_to(self, node: int) -> Packet:
        return self.received[node][-1]

    def entry(self, block: int):
        return self.controller.directory.entry(block)

    def data(self, *words: int) -> BlockData:
        blk = BlockData(self.space.words_per_block)
        for i, w in enumerate(words):
            blk.words[i] = w
        return blk
