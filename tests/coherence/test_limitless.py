"""Tests for the LimitLESS protocol: meta states, traps, software vectors."""

from __future__ import annotations

import pytest

from repro.coherence.limitless import (
    FreeRunningTrapEngine,
    LimitLessController,
    LimitLessSoftware,
    TrapAlwaysController,
)
from repro.coherence.states import DirState, MetaState

from .rig import ControllerRig


def make_limitless(pointers=2, ts=50, n_nodes=8, auto_ack=False, cls=LimitLessController):
    rig = ControllerRig(
        cls, pointer_capacity=pointers, n_nodes=n_nodes, auto_ack=auto_ack
    )
    engine = FreeRunningTrapEngine(rig.sim)
    software = LimitLessSoftware(rig.controller, rig.nics[rig.home], engine, ts=ts)
    return rig, software, engine


class TestReadOverflow:
    def test_reads_within_pointers_stay_in_hardware(self):
        rig, software, engine = make_limitless()
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 0
        assert rig.entry(blk).meta is MetaState.NORMAL

    def test_overflow_traps_and_answers_in_software(self):
        rig, software, engine = make_limitless()
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 1
        assert rig.sent_to(3, "RDATA")  # software launched the reply
        entry = rig.entry(blk)
        assert entry.meta is MetaState.TRAP_ON_WRITE
        # pointers emptied into the local-memory vector; requester added
        assert entry.sharers == set()
        assert software.vectors[blk] == {1, 2, 3}

    def test_trap_charges_ts_cycles(self):
        rig, software, engine = make_limitless(ts=75)
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert engine.trap_cycles == 75

    def test_hardware_resumes_reads_after_trap(self):
        rig, software, engine = make_limitless()
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(4, "RREQ", blk)
        rig.run()
        # 4 fits in the freshly emptied hardware pointers: no second trap
        assert engine.traps_taken == 1
        assert rig.entry(blk).sharers == {4}
        assert rig.sent_to(4, "RDATA")

    def test_second_overflow_merges_into_vector(self):
        rig, software, engine = make_limitless(pointers=1, n_nodes=8)
        blk = rig.block()
        for node in (1, 2, 3, 4):
            rig.send(node, "RREQ", blk)
            rig.run()
        assert software.vectors[blk] >= {1, 2, 3}
        assert engine.traps_taken >= 2

    def test_packets_queued_while_trans_in_progress(self):
        rig, software, engine = make_limitless(ts=500)
        blk = rig.block()
        for node in (1, 2, 3, 4, 5):
            rig.send(node, "RREQ", blk)
        rig.run()
        # Everyone eventually got data despite the interlock.
        for node in (1, 2, 3, 4, 5):
            assert rig.sent_to(node, "RDATA"), f"node {node} starved"
        assert rig.counters.get("dir.interlocked") > 0
        assert rig.entry(blk).meta is MetaState.TRAP_ON_WRITE


class TestWriteTermination:
    def _overflowed_rig(self, **kw):
        rig, software, engine = make_limitless(auto_ack=True, **kw)
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.entry(blk).meta is MetaState.TRAP_ON_WRITE
        return rig, software, engine, blk

    def test_wreq_traps_and_returns_entry_to_hardware(self):
        rig, software, engine, blk = self._overflowed_rig()
        rig.send(4, "WREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.meta is MetaState.NORMAL  # back under hardware control
        assert entry.state is DirState.READ_WRITE  # acks auto-answered
        assert rig.sent_to(4, "WDATA")
        assert blk not in software.vectors  # the vector was freed

    def test_invalidations_cover_the_vector(self):
        rig, software, engine, blk = self._overflowed_rig()
        rig.send(4, "WREQ", blk)
        rig.run()
        for node in (1, 2, 3):
            assert rig.sent_to(node, "INV"), f"node {node} kept a stale copy"

    def test_writer_in_vector_not_invalidated(self):
        rig, software, engine, blk = self._overflowed_rig()
        rig.send(2, "WREQ", blk)
        rig.run()
        assert not rig.sent_to(2, "INV")
        assert rig.sent_to(2, "WDATA")

    def test_write_to_empty_vector_grants_directly(self):
        rig, software, engine = make_limitless()
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        # Manually shrink the vector to only the writer.
        software.vectors[blk] = {4}
        rig.send(4, "WREQ", blk)
        rig.run()
        assert rig.sent_to(4, "WDATA")
        assert rig.entry(blk).state is DirState.READ_WRITE

    def test_ts_per_invalidation_charged(self):
        rig, software, engine = make_limitless(auto_ack=True)
        software.ts_per_invalidation = 10
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        cycles_before = engine.trap_cycles
        rig.send(4, "WREQ", blk)
        rig.run()
        assert engine.trap_cycles - cycles_before == 50 + 10 * 3


class TestTrapAlways:
    def test_every_packet_traps(self):
        rig, software, engine = make_limitless(cls=TrapAlwaysController)
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 1
        assert rig.sent_to(1, "RDATA")
        assert rig.entry(blk).meta is MetaState.TRAP_ALWAYS

    def test_software_emulates_fullmap_without_overflow(self):
        rig, software, engine = make_limitless(
            cls=TrapAlwaysController, pointers=1
        )
        blk = rig.block()
        for node in (1, 2, 3, 4):
            rig.send(node, "RREQ", blk)
        rig.run()
        # Unlimited pointers in software: all four recorded, no eviction.
        assert rig.entry(blk).sharers == {1, 2, 3, 4}
        assert rig.counters.get("dir.pointer_evictions") == 0

    def test_software_write_transaction_completes(self):
        rig, software, engine = make_limitless(
            cls=TrapAlwaysController, auto_ack=True
        )
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(4, "WREQ", blk)
        rig.run()
        assert rig.sent_to(4, "WDATA")
        assert rig.entry(blk).state is DirState.READ_WRITE


class TestEngineAccounting:
    def test_free_running_engine_serializes(self, sim):
        engine = FreeRunningTrapEngine(sim)
        done = []
        engine.request_trap(10, lambda: done.append(sim.now))
        engine.request_trap(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [10, 20]
