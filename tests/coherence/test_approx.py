"""Tests for the §5.1 ASIM approximation of LimitLESS."""

from __future__ import annotations

import pytest

from repro.coherence.approx import ApproxLimitLessController
from repro.coherence.limitless import FreeRunningTrapEngine
from repro.coherence.states import DirState

from .rig import ControllerRig


def make_rig(pointers=2, ts=40, n_nodes=8, auto_ack=False):
    rig = ControllerRig(
        ApproxLimitLessController,
        hw_pointers=pointers,
        ts=ts,
        n_nodes=n_nodes,
        auto_ack=auto_ack,
    )
    engine = FreeRunningTrapEngine(rig.sim)
    rig.controller.trap_engine = engine
    return rig, engine


class TestOverflowStalls:
    def test_within_pointers_no_stall(self):
        rig, engine = make_rig()
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 0

    def test_overflow_stalls_processor_and_controller(self):
        rig, engine = make_rig(ts=40)
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 1
        assert engine.trap_cycles == 40
        assert rig.controller.occupancy.busy_cycles >= 40

    def test_request_still_serviced_fullmap_style(self):
        rig, engine = make_rig()
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        # Full-map semantics: every reader recorded, every reader answered.
        assert rig.entry(blk).sharers == {1, 2, 3}
        for node in (1, 2, 3):
            assert rig.sent_to(node, "RDATA")

    def test_overflow_empties_emulated_pointers(self):
        rig, engine = make_rig(pointers=2)
        blk = rig.block()
        for node in (1, 2, 3):  # 3rd overflows, array empties
            rig.send(node, "RREQ", blk)
        rig.run()
        for node in (4, 5):  # refill the two emulated pointers
            rig.send(node, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 1
        rig.send(6, "RREQ", blk)  # overflows again
        rig.run()
        assert engine.traps_taken == 2

    def test_write_after_overflow_stalls_once_more(self):
        rig, engine = make_rig(auto_ack=True)
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 1
        rig.send(4, "WREQ", blk)
        rig.run()
        assert engine.traps_taken == 2  # the Trap-On-Write termination
        assert rig.sent_to(4, "WDATA")
        assert rig.entry(blk).state is DirState.READ_WRITE

    def test_write_without_prior_overflow_does_not_stall(self):
        rig, engine = make_rig(auto_ack=True)
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        rig.send(2, "WREQ", blk)
        rig.run()
        assert engine.traps_taken == 0

    def test_home_reads_never_overflow(self):
        rig, engine = make_rig(pointers=1)
        blk = rig.block()
        rig.send(0, "RREQ", blk)  # local bit
        rig.send(1, "RREQ", blk)
        rig.run()
        rig.send(0, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 0

    def test_zero_pointer_configuration(self):
        rig, engine = make_rig(pointers=0)
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 1  # every remote read overflows

    def test_negative_pointers_rejected(self):
        with pytest.raises(ValueError):
            ControllerRig(ApproxLimitLessController, hw_pointers=-1)
