"""Conformance tests: every transition of the paper's Table 2.

Each test drives the full-map controller (the reference DirNNB member)
through one annotated transition and checks the directory-entry change and
output message(s) the table specifies.
"""

from __future__ import annotations

import pytest

from repro.coherence.fullmap import FullMapController
from repro.coherence.states import DirState

from .rig import ControllerRig


@pytest.fixture
def rig():
    return ControllerRig(FullMapController)


class TestTransition1:
    """READ_ONLY + RREQ(i): P = P + {i}; RDATA -> i."""

    def test_first_reader(self, rig):
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        assert rig.sent_to(1, "RDATA")
        assert rig.entry(blk).sharers == {1}
        assert rig.entry(blk).state is DirState.READ_ONLY

    def test_pointer_set_accumulates(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.entry(blk).sharers == {1, 2, 3}
        for node in (1, 2, 3):
            assert rig.sent_to(node, "RDATA")

    def test_rdata_carries_memory_contents(self, rig):
        blk = rig.block()
        rig.memory.block(blk).words[0] = 99
        rig.send(1, "RREQ", blk)
        rig.run()
        assert rig.last_to(1).data.words[0] == 99

    def test_repeat_reader_not_duplicated(self, rig):
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.run()
        rig.send(1, "RREQ", blk)
        rig.run()
        assert rig.entry(blk).sharers == {1}
        assert len(rig.sent_to(1, "RDATA")) == 2

    def test_home_node_uses_local_bit(self, rig):
        blk = rig.block()
        rig.send(0, "RREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.local_bit
        assert entry.sharers == set()
        assert entry.pointers_used() == 0


class TestTransition2:
    """READ_ONLY + WREQ(i), P = {} or {i}: P = {i}; WDATA -> i."""

    def test_write_to_uncached_block(self, rig):
        blk = rig.block()
        rig.send(2, "WREQ", blk)
        rig.run()
        assert rig.sent_to(2, "WDATA")
        entry = rig.entry(blk)
        assert entry.state is DirState.READ_WRITE
        assert entry.sharers == {2}

    def test_upgrade_by_sole_sharer(self, rig):
        blk = rig.block()
        rig.send(2, "RREQ", blk)
        rig.run()
        rig.send(2, "WREQ", blk)
        rig.run()
        assert rig.sent_to(2, "WDATA")
        assert not rig.sent_to(2, "INV")
        assert rig.entry(blk).state is DirState.READ_WRITE


class TestTransition3:
    """READ_ONLY + WREQ(i), P = {k1..kn}: AckCtr = n (or n-1 if i in P);
    INV -> each k != i; enter WRITE_TRANSACTION."""

    def test_invalidates_all_other_sharers(self, rig):
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(4, "WREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.state is DirState.WRITE_TRANSACTION
        assert entry.ack_waiting == {1, 2, 3}
        for node in (1, 2, 3):
            assert rig.sent_to(node, "INV")
        assert not rig.sent_to(4, "WDATA")  # held until acks arrive

    def test_writer_already_in_pointer_set(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(1, "WREQ", blk)
        rig.run()
        entry = rig.entry(blk)
        assert entry.ack_waiting == {2}  # AckCtr = n - 1
        assert not rig.sent_to(1, "INV")


class TestTransition4:
    """READ_WRITE + WREQ(j != owner): INV -> owner; WRITE_TRANSACTION."""

    def test_owner_invalidated(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "WREQ", blk)
        rig.run()
        assert rig.sent_to(1, "INV")
        entry = rig.entry(blk)
        assert entry.state is DirState.WRITE_TRANSACTION
        assert entry.ack_waiting == {1}
        assert entry.requester == 2


class TestTransition5:
    """READ_WRITE + RREQ(i): INV -> owner; READ_TRANSACTION."""

    def test_reader_waits_for_owner(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(3, "RREQ", blk)
        rig.run()
        assert rig.sent_to(1, "INV")
        entry = rig.entry(blk)
        assert entry.state is DirState.READ_TRANSACTION
        assert entry.requester == 3
        assert not rig.sent_to(3, "RDATA")


class TestTransition6:
    """READ_WRITE + REPM(owner): data -> memory; P = {}; READ_ONLY."""

    def test_replace_modified(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(1, "REPM", blk, data=rig.data(42))
        rig.run()
        entry = rig.entry(blk)
        assert entry.state is DirState.READ_ONLY
        assert entry.sharers == set()
        assert rig.memory.block(blk).words[0] == 42


class TestTransition7:
    """WRITE_TRANSACTION: requests bounce BUSY; acks count down."""

    def test_rreq_gets_busy(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(3, "WREQ", blk)
        rig.run()
        rig.send(4, "RREQ", blk)
        rig.run()
        assert rig.sent_to(4, "BUSY")

    def test_wreq_gets_busy(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(3, "WREQ", blk)
        rig.run()
        rig.send(4, "WREQ", blk)
        rig.run()
        assert rig.sent_to(4, "BUSY")

    def test_partial_acks_do_not_complete(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(3, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        rig.send(1, "ACKC", blk, txn=txn)
        rig.run()
        assert rig.entry(blk).state is DirState.WRITE_TRANSACTION
        assert not rig.sent_to(3, "WDATA")

    def test_repm_counts_as_ack(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "WREQ", blk)
        rig.run()
        # Owner's replacement crosses the INV: counts as the ack, with data.
        rig.send(1, "REPM", blk, data=rig.data(7))
        rig.run()
        assert rig.sent_to(2, "WDATA")
        assert rig.entry(blk).state is DirState.READ_WRITE
        assert rig.memory.block(blk).words[0] == 7


class TestTransition8:
    """WRITE_TRANSACTION: last ACKC (or owner's UPDATE) releases WDATA."""

    def test_last_ack_completes(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(3, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        rig.send(1, "ACKC", blk, txn=txn)
        rig.send(2, "ACKC", blk, txn=txn)
        rig.run()
        assert rig.sent_to(3, "WDATA")
        entry = rig.entry(blk)
        assert entry.state is DirState.READ_WRITE
        assert entry.sharers == {3}

    def test_owner_update_completes(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        rig.send(1, "UPDATE", blk, data=rig.data(55), txn=txn)
        rig.run()
        wdata = rig.sent_to(2, "WDATA")
        assert wdata and wdata[0].data.words[0] == 55
        assert rig.entry(blk).state is DirState.READ_WRITE


class TestTransition9:
    """READ_TRANSACTION: requests bounce BUSY."""

    @pytest.mark.parametrize("opcode", ["RREQ", "WREQ"])
    def test_busy(self, rig, opcode):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "RREQ", blk)
        rig.run()
        rig.send(3, opcode, blk)
        rig.run()
        assert rig.sent_to(3, "BUSY")


class TestTransition10:
    """READ_TRANSACTION + UPDATE: data -> memory; RDATA -> requester."""

    def test_update_completes_read(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "RREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        rig.send(1, "UPDATE", blk, data=rig.data(88), txn=txn)
        rig.run()
        rdata = rig.sent_to(2, "RDATA")
        assert rdata and rdata[0].data.words[0] == 88
        entry = rig.entry(blk)
        assert entry.state is DirState.READ_ONLY
        assert entry.sharers == {2}
        assert rig.memory.block(blk).words[0] == 88

    def test_owner_repm_also_completes_read(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "RREQ", blk)
        rig.run()
        rig.send(1, "REPM", blk, data=rig.data(21))
        rig.run()
        assert rig.sent_to(2, "RDATA")
        assert rig.entry(blk).state is DirState.READ_ONLY


class TestRaceHandling:
    """Beyond Table 2: stray and mismatched packets are counted, dropped."""

    def test_stray_ack_in_read_only_dropped(self, rig):
        blk = rig.block()
        rig.send(1, "ACKC", blk, txn=None)
        rig.run()
        assert rig.counters.get("dir.stray_dropped") == 1
        assert rig.entry(blk).state is DirState.READ_ONLY

    def test_stale_txn_ack_not_counted(self, rig):
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
        rig.run()
        rig.send(3, "WREQ", blk)
        rig.run()
        txn = rig.entry(blk).txn
        rig.send(1, "ACKC", blk, txn=txn - 1)  # echo of an older round
        rig.run()
        assert rig.entry(blk).ack_waiting == {1, 2}
        assert rig.counters.get("dir.stray_dropped") == 1

    def test_repm_from_non_owner_dropped(self, rig):
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(2, "REPM", blk, data=rig.data(1))
        rig.run()
        assert rig.entry(blk).state is DirState.READ_WRITE
        assert rig.memory.block(blk).words[0] == 0  # data not absorbed
        assert rig.counters.get("dir.stray_dropped") == 1

    def test_regrant_to_owner(self, rig):
        """A WREQ from the current owner re-sends WDATA (retry path)."""
        blk = rig.block()
        rig.send(1, "WREQ", blk)
        rig.run()
        rig.send(1, "WREQ", blk)
        rig.run()
        assert len(rig.sent_to(1, "WDATA")) == 2
        assert rig.counters.get("dir.regrant") == 1

    def test_wrong_home_rejected(self, rig):
        from repro.coherence.states import ProtocolError

        foreign = rig.space.address(1, 0x100)
        with pytest.raises(ProtocolError):
            rig.controller.receive(
                __import__(
                    "repro.network.packet", fromlist=["protocol_packet"]
                ).protocol_packet(1, 0, "RREQ", foreign)
            )

    def test_unaligned_address_rejected(self, rig):
        from repro.coherence.states import ProtocolError
        from repro.network.packet import protocol_packet

        with pytest.raises(ProtocolError):
            rig.controller.receive(protocol_packet(1, 0, "RREQ", rig.block() + 4))
