"""Edge cases of the LimitLESS software path."""

from __future__ import annotations

import pytest

from repro.coherence.limitless import (
    FreeRunningTrapEngine,
    LimitLessController,
    LimitLessSoftware,
)
from repro.coherence.states import DirState, MetaState, ProtocolError
from repro.network.packet import interrupt_packet

from .rig import ControllerRig


def make(pointers=2, ts=50, **kw):
    rig = ControllerRig(LimitLessController, pointer_capacity=pointers, **kw)
    engine = FreeRunningTrapEngine(rig.sim)
    software = LimitLessSoftware(rig.controller, rig.nics[0], engine, ts=ts)
    return rig, software, engine


class TestStrayTrapsInTrapOnWrite:
    def _overflowed(self, **kw):
        rig, software, engine = make(**kw)
        blk = rig.block()
        for node in (1, 2, 3):
            rig.send(node, "RREQ", blk)
        rig.run()
        assert rig.entry(blk).meta is MetaState.TRAP_ON_WRITE
        return rig, software, engine, blk

    def test_stray_repm_restores_mode(self):
        rig, software, engine, blk = self._overflowed()
        rig.send(3, "REPM", blk, data=rig.data(9))
        rig.run()
        entry = rig.entry(blk)
        assert entry.meta is MetaState.TRAP_ON_WRITE  # mode survives
        assert entry.state is DirState.READ_ONLY
        assert rig.counters.get("limitless.sw_stray") == 1
        # the stray's data was NOT absorbed
        assert rig.memory.block(blk).words[0] == 0

    def test_stray_update_restores_mode(self):
        rig, software, engine, blk = self._overflowed()
        rig.send(2, "UPDATE", blk, data=rig.data(5), txn=99)
        rig.run()
        assert rig.entry(blk).meta is MetaState.TRAP_ON_WRITE
        assert rig.counters.get("limitless.sw_stray") == 1

    def test_vector_survives_stray_traffic(self):
        rig, software, engine, blk = self._overflowed()
        before = set(software.vectors[blk])
        rig.send(3, "REPM", blk, data=rig.data(9))
        rig.run()
        assert software.vectors[blk] == before


class TestInterruptPackets:
    def test_interrupt_without_handler_is_dropped(self):
        rig, software, engine = make()
        rig.sim.call_at(
            0, lambda: rig.nics[1].send(interrupt_packet(1, 0, "IPI", n=1))
        )
        rig.run()
        assert rig.counters.get("limitless.interrupts_dropped") == 1

    def test_interrupt_with_handler_is_delivered(self):
        rig, software, engine = make()
        got = []
        software.interrupt_handler = lambda pkt: got.append(pkt.meta["n"])
        rig.sim.call_at(
            0, lambda: rig.nics[1].send(interrupt_packet(1, 0, "IPI", n=7))
        )
        rig.run()
        assert got == [7]
        assert engine.traps_taken == 1  # the message cost a trap

    def test_interrupts_interleave_with_protocol_traps(self):
        rig, software, engine = make(pointers=1)
        got = []
        software.interrupt_handler = lambda pkt: got.append(pkt.opcode)
        blk = rig.block()
        rig.send(1, "RREQ", blk)
        rig.send(2, "RREQ", blk)  # overflow trap
        rig.sim.call_at(1, lambda: rig.nics[3].send(interrupt_packet(3, 0, "IPI")))
        rig.run()
        assert got == ["IPI"]
        assert rig.sent_to(2, "RDATA")


class TestTrapHandlerGuards:
    def test_handler_on_non_interlocked_entry_raises(self):
        rig, software, engine = make()
        blk = rig.block()
        rig.nics[0].divert_to_ipi(
            __import__(
                "repro.network.packet", fromlist=["protocol_packet"]
            ).protocol_packet(1, 0, "RREQ", blk)
        )
        with pytest.raises(ProtocolError):
            rig.run()

    def test_zero_pointer_limitless(self):
        """p = 0: every remote read traps — §3.1's all-software endpoint."""
        rig, software, engine = make(pointers=0)
        blk = rig.block()
        for node in (1, 2):
            rig.send(node, "RREQ", blk)
            rig.run()
        assert engine.traps_taken == 2
        assert software.vectors[blk] == {1, 2}

    def test_local_reads_never_trap_even_with_zero_pointers(self):
        rig, software, engine = make(pointers=0)
        blk = rig.block()
        rig.send(0, "RREQ", blk)
        rig.run()
        assert engine.traps_taken == 0
        assert rig.entry(blk).local_bit
