"""Process-level chaos: seeded SIGKILLs with a bit-identical oracle.

These are real forked processes dying under real signals, so the tests
keep the grid tiny; the full campaign runs in CI's recovery-smoke job
and via ``repro faults --process-chaos``.
"""

from __future__ import annotations

import pytest

from repro.recover.chaos import chaos_points, run_chaos_campaign

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="chaos campaign forks its victims",
)


def _campaign(tmp_path, *, shards, kill_target, kills=1):
    points = chaos_points(
        procs=8,
        protocols=("limitless",),
        workloads=("weather",),
        shards=shards,
        iters=1,
    )
    return run_chaos_campaign(
        points,
        kills=kills,
        seed=3,
        every=200,
        kill_target=kill_target,
        kill_window=(0.01, 0.08),
        workdir=str(tmp_path),
        out=None,
        echo=lambda _line: None,
    )


def test_process_kill_recovers_bit_identical(tmp_path):
    report = _campaign(tmp_path, shards=(1, 2), kill_target="process")
    assert report["summary"]["points"] == 2
    assert report["summary"]["failed"] == 0, report["points"]
    for row in report["points"]:
        assert row["recovered"], row


def test_worker_kill_recovers_bit_identical(tmp_path):
    report = _campaign(tmp_path, shards=(2,), kill_target="worker")
    assert report["summary"]["failed"] == 0, report["points"]


def test_zero_kills_matches_golden(tmp_path):
    """The chaos harness itself must not perturb results."""
    report = _campaign(tmp_path, shards=(1,), kill_target="process", kills=0)
    row = report["points"][0]
    assert row["recovered"] and row["kills_delivered"] == 0, row
