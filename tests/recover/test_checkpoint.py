"""Deterministic checkpoint/resume: the crash-safety oracle.

The contract under test: a run that is checkpointed, killed, and resumed
from its latest snapshot produces final statistics *bit-identical* to the
same run executed without interruption — across workloads, protocols and
shard counts — and the cycle counts match the committed resume goldens,
so a semantic drift in either the simulator or the snapshot layer fails
loudly here.
"""

from __future__ import annotations

import json
from dataclasses import asdict, replace
from pathlib import Path

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.recover import (
    CheckpointError,
    CheckpointInterrupted,
    SnapshotDrift,
    latest_snapshot,
    read_snapshot,
    resume_run,
    run_with_checkpoints,
)
from repro.recover.snapshot import list_snapshots
from repro.sweep.spec import WorkloadSpec

GOLDENS = json.loads(
    (Path(__file__).parent / "resume_goldens.json").read_text()
)

WORKLOADS = {
    "weather": WorkloadSpec("weather", {"iterations": 2}),
    "multigrid": WorkloadSpec(
        "multigrid", {"levels": [2, 2], "points_per_proc": 8}
    ),
}


def _config(protocol: str, shards: int) -> AlewifeConfig:
    return AlewifeConfig(
        n_procs=16, protocol=protocol, pointers=4, ts=50, shards=shards
    )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("protocol", ["fullmap", "limitless"])
@pytest.mark.parametrize("shards", [1, 2])
def test_interrupted_resume_is_bit_identical(
    tmp_path, workload, protocol, shards
):
    config = _config(protocol, shards)
    spec = WORKLOADS[workload]
    golden = run_experiment(config, spec.build(), shard_workers=1)

    with pytest.raises(CheckpointInterrupted):
        run_with_checkpoints(
            config, spec, every=300, out_dir=tmp_path, stop_after=1
        )
    snap_path = latest_snapshot(tmp_path)
    assert snap_path is not None
    assert read_snapshot(snap_path).cycle < golden.cycles
    resumed = resume_run(snap_path, every=300)

    assert resumed.to_dict() == golden.to_dict()
    assert resumed.cycles == GOLDENS[f"{workload}/{protocol}/k{shards}"]


def test_uninterrupted_checkpointed_run_matches_plain(tmp_path):
    config = _config("limitless", 1)
    spec = WORKLOADS["weather"]
    golden = run_experiment(config, spec.build())
    stats = run_with_checkpoints(config, spec, every=300, out_dir=tmp_path)
    assert stats.to_dict() == golden.to_dict()
    # Serial snapshots land on exact multiples of the interval.
    cycles = [s.cycle for s in map(read_snapshot, list_snapshots(tmp_path))]
    assert cycles and all(c % 300 == 0 for c in cycles)


def test_repeated_interruptions_converge(tmp_path):
    """Kill after every snapshot; each resume still reaches the golden."""
    config = _config("limitless", 2)
    spec = WORKLOADS["weather"]
    golden = run_experiment(config, spec.build(), shard_workers=1)
    try:
        run_with_checkpoints(
            config, spec, every=300, out_dir=tmp_path, stop_after=1
        )
        pytest.fail("expected an interruption")
    except CheckpointInterrupted:
        pass
    stats = None
    for _ in range(20):
        try:
            stats = resume_run(
                latest_snapshot(tmp_path), every=300, stop_after=1
            )
            break
        except CheckpointInterrupted:
            continue
    assert stats is not None, "never converged"
    assert stats.to_dict() == golden.to_dict()


def test_digest_mismatch_is_drift(tmp_path):
    config = _config("fullmap", 1)
    spec = WORKLOADS["weather"]
    with pytest.raises(CheckpointInterrupted):
        run_with_checkpoints(
            config, spec, every=300, out_dir=tmp_path, stop_after=1
        )
    snap = read_snapshot(latest_snapshot(tmp_path))
    forged = replace(snap, digest="0" * 64)
    with pytest.raises(SnapshotDrift):
        resume_run(forged, out_dir=tmp_path)


def test_config_mismatch_is_drift(tmp_path):
    """A tampered config diverges the replay; the digest check refuses it.

    (The config swap has to actually change the simulated state by the
    marker's cycle — a different RNG seed diverges from cycle zero.)
    """
    config = _config("fullmap", 1)
    spec = WORKLOADS["weather"]
    with pytest.raises(CheckpointInterrupted):
        run_with_checkpoints(
            config, spec, every=300, out_dir=tmp_path, stop_after=1
        )
    snap = read_snapshot(latest_snapshot(tmp_path))
    other = replace(
        snap, config=asdict(replace(config, seed=config.seed + 1))
    )
    with pytest.raises(SnapshotDrift):
        resume_run(other, out_dir=tmp_path)


def test_source_fingerprint_mismatch_is_drift(tmp_path):
    config = _config("fullmap", 1)
    spec = WORKLOADS["weather"]
    with pytest.raises(CheckpointInterrupted):
        run_with_checkpoints(
            config, spec, every=300, out_dir=tmp_path, stop_after=1
        )
    snap = replace(
        read_snapshot(latest_snapshot(tmp_path)), fingerprint="deadbeef"
    )
    with pytest.raises(SnapshotDrift):
        resume_run(snap, out_dir=tmp_path)
    # ... unless the caller explicitly opts out of the source check.
    stats = resume_run(snap, out_dir=tmp_path, check_source=False)
    assert stats.cycles == GOLDENS["weather/fullmap/k1"]


def test_unknown_snapshot_version_rejected(tmp_path):
    config = _config("fullmap", 1)
    spec = WORKLOADS["weather"]
    with pytest.raises(CheckpointInterrupted):
        run_with_checkpoints(
            config, spec, every=300, out_dir=tmp_path, stop_after=1
        )
    path = list_snapshots(tmp_path)[-1]
    blob = json.loads(path.read_text())
    blob["version"] = 999
    path.write_text(json.dumps(blob))
    with pytest.raises(ValueError):
        read_snapshot(path)


def test_checkpoint_requires_interval_or_snapshot(tmp_path):
    with pytest.raises(CheckpointError):
        run_with_checkpoints(
            _config("fullmap", 1), WORKLOADS["weather"], out_dir=tmp_path
        )
    with pytest.raises(CheckpointError):
        run_with_checkpoints(
            _config("fullmap", 1),
            WORKLOADS["weather"],
            every=0,
            out_dir=tmp_path,
        )
