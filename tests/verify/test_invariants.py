"""Tests for the coherence invariant auditor — including that it actually
catches corrupted states (an auditor that can't fail verifies nothing)."""

from __future__ import annotations

import pytest

from repro.cache.states import CacheState
from repro.coherence.states import DirState, MetaState
from repro.machine import AlewifeConfig, AlewifeMachine
from repro.mem.memory import BlockData
from repro.verify.invariants import CoherenceViolation, audit_machine
from repro.workloads import HotSpotWorkload, MigratoryWorkload


def finished_machine(protocol="fullmap", **overrides):
    defaults = dict(
        n_procs=4,
        protocol=protocol,
        cache_lines=128,
        segment_bytes=1 << 16,
        max_cycles=2_000_000,
    )
    defaults.update(overrides)
    machine = AlewifeMachine(AlewifeConfig(**defaults))
    machine.run(HotSpotWorkload(rounds=2), audit=False)
    return machine


class TestCleanMachinePasses:
    def test_fullmap(self):
        assert audit_machine(finished_machine()) > 0

    def test_limitless_with_vectors(self):
        machine = finished_machine(protocol="limitless", pointers=1, ts=30)
        assert audit_machine(machine) > 0

    def test_migratory_final_state(self):
        machine = AlewifeMachine(
            AlewifeConfig(
                n_procs=4, cache_lines=128, segment_bytes=1 << 16,
                max_cycles=2_000_000,
            )
        )
        machine.run(MigratoryWorkload(rounds=1), audit=False)
        assert audit_machine(machine) > 0


class TestCorruptionDetected:
    def test_unrecorded_cached_copy(self):
        machine = finished_machine()
        blk = machine.space.address(0, 0x8000)
        machine.nodes[2].cache_array.install(
            blk, CacheState.READ_ONLY, BlockData(4)
        )
        machine.nodes[0].directory_controller.directory.entry(blk)  # empty P
        with pytest.raises(CoherenceViolation, match="cached at"):
            audit_machine(machine)

    def test_two_writers(self):
        machine = finished_machine()
        blk = machine.space.address(0, 0x8000)
        entry = machine.nodes[0].directory_controller.directory.entry(blk)
        entry.state = DirState.READ_WRITE
        for node in (1, 2):
            entry.add_sharer(node)
            machine.nodes[node].cache_array.install(
                blk, CacheState.READ_WRITE, BlockData(4)
            )
        with pytest.raises(CoherenceViolation, match="READ_WRITE"):
            audit_machine(machine)

    def test_stale_read_only_data(self):
        machine = finished_machine()
        blk = machine.space.address(0, 0x8000)
        entry = machine.nodes[0].directory_controller.directory.entry(blk)
        entry.add_sharer(1)
        bad = BlockData(4)
        bad.words[0] = 999  # memory still holds zeros
        machine.nodes[1].cache_array.install(blk, CacheState.READ_ONLY, bad)
        with pytest.raises(CoherenceViolation, match="caches"):
            audit_machine(machine)

    def test_open_transaction_at_quiescence(self):
        machine = finished_machine()
        blk = machine.space.address(0, 0x8000)
        entry = machine.nodes[0].directory_controller.directory.entry(blk)
        entry.state = DirState.WRITE_TRANSACTION
        with pytest.raises(CoherenceViolation, match="WRITE_TRANSACTION"):
            audit_machine(machine)

    def test_interlocked_entry_at_quiescence(self):
        machine = finished_machine()
        blk = machine.space.address(0, 0x8000)
        entry = machine.nodes[0].directory_controller.directory.entry(blk)
        entry.meta = MetaState.TRANS_IN_PROGRESS
        with pytest.raises(CoherenceViolation, match="interlocked"):
            audit_machine(machine)

    def test_rw_copy_under_read_only_entry(self):
        machine = finished_machine()
        blk = machine.space.address(0, 0x8000)
        entry = machine.nodes[0].directory_controller.directory.entry(blk)
        entry.add_sharer(3)
        machine.nodes[3].cache_array.install(
            blk, CacheState.READ_WRITE, BlockData(4)
        )
        with pytest.raises(CoherenceViolation, match="hold READ_WRITE"):
            audit_machine(machine)

    def test_stale_directory_pointer_is_allowed(self):
        """The asymmetric case that is NOT a violation: silent clean
        replacement leaves a pointer with no copy behind it."""
        machine = finished_machine()
        blk = machine.space.address(0, 0x8000)
        entry = machine.nodes[0].directory_controller.directory.entry(blk)
        entry.add_sharer(1)  # directory thinks node 1 caches it; it doesn't
        assert audit_machine(machine) > 0

    def test_vector_recorded_copy_is_allowed(self):
        machine = finished_machine(protocol="limitless", pointers=1, ts=30)
        node0 = machine.nodes[0]
        blk = machine.space.address(0, 0x8000)
        node0.directory_controller.directory.entry(blk)
        node0.software.vectors[blk] = {2}
        machine.nodes[2].cache_array.install(
            blk, CacheState.READ_ONLY, BlockData(4)
        )
        assert audit_machine(machine) > 0
