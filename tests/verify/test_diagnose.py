"""Tests for the stuck-machine diagnosis tool."""

from __future__ import annotations

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.sim.kernel import SimulationError
from repro.sync.barrier import barrier_wait, build_combining_tree
from repro.verify import diagnose
from repro.workloads import HotSpotWorkload
from repro.workloads.base import Workload


def small_config(**overrides):
    defaults = dict(
        n_procs=4,
        cache_lines=128,
        segment_bytes=1 << 16,
        max_cycles=2_000_000,
    )
    defaults.update(overrides)
    return AlewifeConfig(**defaults)


class _DeadlockedBarrier(Workload):
    """Processor 3 never arrives: everyone else spins forever."""

    name = "deadlocked"

    def build(self, machine):
        n = machine.config.n_procs
        spec = build_combining_tree(machine.allocator, list(range(n)), arity=2)
        poll = machine.config.spin_poll_interval

        def program(p):
            if p == n - 1:
                yield ops.think(5)  # defects from the barrier
                return
            yield from barrier_wait(spec, p, 1, poll_interval=poll)

        return {p: [program(p)] for p in range(n)}


class TestDiagnose:
    def test_quiescent_machine(self):
        machine = AlewifeMachine(small_config())
        machine.run(HotSpotWorkload(rounds=1))
        diagnosis = diagnose(machine)
        assert diagnosis.is_quiescent
        assert "(machine is quiescent)" in diagnosis.report()
        assert diagnosis.finished_processors == 4

    def test_deadlocked_barrier_is_explained(self):
        machine = AlewifeMachine(small_config(max_cycles=20_000))
        try:
            machine.run(_DeadlockedBarrier())
        except SimulationError:
            pass
        diagnosis = diagnose(machine)
        assert not diagnosis.is_quiescent
        assert diagnosis.finished_processors == 1  # only the defector
        assert len(diagnosis.stuck_contexts) == 3
        report = diagnosis.report()
        # the report names the barrier frame the spinners are stuck in
        assert "barrier_wait" in report
        assert "epoch=1" in report

    def test_open_mshr_reported(self):
        machine = AlewifeMachine(small_config(max_cycles=50))
        try:
            machine.run(HotSpotWorkload(rounds=2))
        except SimulationError:
            pass
        diagnosis = diagnose(machine)
        assert not diagnosis.is_quiescent
        assert "MSHR" in diagnosis.report() or diagnosis.stuck_contexts
