"""Test suite for the LimitLESS reproduction."""
