"""Tests for the network fabric: latency, contention, ordering."""

from __future__ import annotations

import pytest

from repro.mem.memory import BlockData
from repro.network.fabric import IdealNetwork, WormholeNetwork
from repro.network.packet import Packet, protocol_packet
from repro.network.topology import Mesh2D


def make_net(sim, width=4):
    return WormholeNetwork(sim, Mesh2D(width, width))


def attach_recorder(net, node_id, log):
    net.attach(node_id, lambda p: log.append((net.sim.now, p)))


class TestWormholeDelivery:
    def test_packet_arrives(self, sim):
        net = make_net(sim)
        log = []
        attach_recorder(net, 5, log)
        sim.call_at(0, lambda: net.send(protocol_packet(0, 5, "RREQ", 0)))
        sim.run()
        assert len(log) == 1
        assert str(log[0][1].opcode) == "RREQ"

    def test_latency_grows_with_distance(self, sim):
        net = make_net(sim)
        far, near = [], []
        attach_recorder(net, 15, far)
        attach_recorder(net, 1, near)
        sim.call_at(0, lambda: net.send(protocol_packet(0, 15, "RREQ", 0)))
        sim.call_at(0, lambda: net.send(protocol_packet(0, 1, "RREQ", 0)))
        sim.run()
        assert far[0][0] > near[0][0]

    def test_longer_packets_take_longer(self, sim):
        net = make_net(sim)
        log = []
        attach_recorder(net, 3, log)
        data = BlockData(4)
        sim.call_at(0, lambda: net.send(protocol_packet(0, 3, "RREQ", 0)))
        sim.run()
        control_time = log[0][0]
        log.clear()
        sim.call_at(
            sim.now,
            lambda: net.send(protocol_packet(0, 3, "RDATA", 0, data=data)),
        )
        start = sim.now
        sim.run()
        assert log[0][0] - start > control_time

    def test_local_delivery_bypasses_mesh(self, sim):
        net = make_net(sim)
        log = []
        attach_recorder(net, 2, log)
        sim.call_at(0, lambda: net.send(protocol_packet(2, 2, "RREQ", 0)))
        sim.run()
        assert log[0][0] == 2
        assert net.link_busy_cycles == {}

    def test_contention_serializes_shared_link(self, sim):
        net = make_net(sim)
        log = []
        attach_recorder(net, 3, log)
        # Two packets from the same source share every link on the path.
        sim.call_at(0, lambda: net.send(protocol_packet(0, 3, "RREQ", 0)))
        sim.call_at(0, lambda: net.send(protocol_packet(0, 3, "RREQ", 16)))
        sim.run()
        t1, t2 = log[0][0], log[1][0]
        assert t2 > t1
        assert net.stats.contention_cycles > 0

    def test_disjoint_paths_do_not_contend(self, sim):
        net = make_net(sim)
        log = []
        attach_recorder(net, 1, log)
        attach_recorder(net, 7, log)
        sim.call_at(0, lambda: net.send(protocol_packet(0, 1, "RREQ", 0)))
        sim.call_at(0, lambda: net.send(protocol_packet(4, 7, "RREQ", 0)))
        sim.run()
        assert net.stats.contention_cycles == 0

    def test_fifo_per_pair(self, sim):
        net = make_net(sim)
        order = []
        net.attach(9, lambda p: order.append(p.meta["tag"]))
        for i in range(6):
            sim.call_at(i, lambda i=i: net.send(
                protocol_packet(0, 9, "RREQ", 0, tag=i)
            ))
        sim.run()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_hottest_links_ranking(self, sim):
        net = make_net(sim)
        log = []
        attach_recorder(net, 1, log)
        for i in range(5):
            sim.call_at(i, lambda: net.send(protocol_packet(0, 1, "RREQ", 0)))
        sim.run()
        top = net.hottest_links(1)
        assert top and top[0][1] > 0

    def test_stats_accumulate(self, sim):
        net = make_net(sim)
        log = []
        attach_recorder(net, 3, log)
        sim.call_at(0, lambda: net.send(protocol_packet(0, 3, "RREQ", 0)))
        sim.run()
        assert net.stats.packets == 1
        assert net.stats.per_opcode["RREQ"] == 1
        assert net.stats.mean_latency > 0


class TestIdealNetwork:
    def test_fixed_latency(self, sim):
        net = IdealNetwork(sim, 8, latency=10)
        log = []
        attach_recorder(net, 5, log)
        pkt = protocol_packet(0, 5, "RREQ", 0)
        sim.call_at(0, lambda: net.send(pkt))
        sim.run()
        assert log[0][0] == 10 + pkt.length_words

    def test_no_contention_between_senders(self, sim):
        net = IdealNetwork(sim, 8, latency=10)
        log = []
        attach_recorder(net, 5, log)
        sim.call_at(0, lambda: net.send(protocol_packet(0, 5, "RREQ", 0)))
        sim.call_at(0, lambda: net.send(protocol_packet(1, 5, "RREQ", 0)))
        sim.run()
        assert log[0][0] == log[1][0]

    def test_per_pair_fifo_clamp(self, sim):
        net = IdealNetwork(sim, 8, latency=10)
        order = []
        net.attach(5, lambda p: order.append(p.meta["tag"]))
        data = BlockData(16)  # long packet first
        sim.call_at(0, lambda: net.send(
            protocol_packet(0, 5, "RDATA", 0, data=data, tag="long")
        ))
        sim.call_at(1, lambda: net.send(protocol_packet(0, 5, "RREQ", 0, tag="short")))
        sim.run()
        assert order == ["long", "short"]


class TestAttachment:
    def test_double_attach_rejected(self, sim):
        net = make_net(sim)
        net.attach(0, lambda p: None)
        with pytest.raises(ValueError):
            net.attach(0, lambda p: None)

    def test_unattached_destination_raises(self, sim):
        net = make_net(sim)
        sim.call_at(0, lambda: net.send(protocol_packet(0, 3, "RREQ", 0)))
        with pytest.raises(KeyError):
            sim.run()


class TestPacketFormat:
    def test_length_includes_header_operands_data(self):
        pkt = protocol_packet(0, 1, "RDATA", 0x40, data=BlockData(4))
        # header(1) + address(1) + 4 data words
        assert pkt.length_words == 6

    def test_meta_counts_as_operands(self):
        a = protocol_packet(0, 1, "INV", 0x40, txn=3)
        b = protocol_packet(0, 1, "BUSY", 0x40)
        assert a.length_words == b.length_words + 1

    def test_data_bearing_requires_data(self):
        with pytest.raises(ValueError):
            Packet(0, 1, "RDATA", 0)

    def test_unknown_protocol_opcode_rejected(self):
        with pytest.raises(ValueError):
            protocol_packet(0, 1, "NOPE", 0)

    def test_interrupt_class(self):
        from repro.network.packet import interrupt_packet

        pkt = interrupt_packet(0, 1, "PROFILE", payload=7)
        assert pkt.is_interrupt
        assert not pkt.is_protocol
