"""Packet-pool safety: recycling must be invisible to the protocol.

Two layers of proof:

* adversarial unit tests — a recycled packet cannot leak stale payload,
  meta, CRC, or timestamps into its next transaction, and misuse
  (double release) is caught loudly;
* golden bit-identity — whole-machine runs with the pool on and off
  produce identical results (cycles, counters, network stats) across
  protocols, and still do under nonzero fault-injection rates where
  packets are dropped, duplicated, delayed and corrupted mid-flight.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.mem.memory import BlockData
from repro.network.packet import (
    DISABLED_POOL,
    Op,
    Packet,
    PacketPool,
    interrupt_packet,
    packet_crc,
)
from repro.workloads import HotSpotWorkload


def _block(words: list[int]) -> BlockData:
    data = BlockData(len(words))
    data.words[:] = words
    return data


class TestAdversarialReuse:
    def test_recycled_packet_is_scrubbed(self):
        pool = PacketPool()
        dirty = pool.protocol(
            1, 2, Op.RDATA, 0x100, data=_block([7, 7, 7, 7]), requester=5
        )
        dirty.sent_at = 123
        dirty.crc = packet_crc(dirty)
        pool.release(dirty)
        clean = pool.protocol(3, 4, Op.RREQ, 0x200)
        assert clean is dirty  # it really was recycled...
        assert clean.data is None  # ...but nothing leaked through
        assert clean.meta == {}
        assert clean.crc is None
        assert clean.sent_at == -1
        assert clean.src == 3 and clean.dst == 4
        assert clean.opcode is Op.RREQ
        assert clean.address == 0x200
        assert not clean._free

    def test_double_release_raises(self):
        pool = PacketPool()
        packet = pool.protocol(0, 1, Op.RREQ, 0x40)
        pool.release(packet)
        with pytest.raises(RuntimeError, match="double release"):
            pool.release(packet)

    def test_recycled_data_bearing_opcode_still_validated(self):
        pool = PacketPool()
        pool.release(pool.protocol(0, 1, Op.RREQ, 0x40))
        with pytest.raises(ValueError, match="requires data"):
            pool.protocol(0, 1, Op.WDATA, 0x40)

    def test_string_opcode_interned_on_recycle(self):
        pool = PacketPool()
        pool.release(pool.protocol(0, 1, Op.RREQ, 0x40))
        packet = pool.protocol(0, 1, "INV", 0x80)
        assert packet.opcode is Op.INV

    def test_interrupt_packets_never_pooled(self):
        pool = PacketPool()
        ipi = interrupt_packet(0, 1, "IPI", payload="x")
        pool.release(ipi)
        assert len(pool) == 0
        assert ipi.meta == {"payload": "x"}  # untouched: software owns it

    def test_disabled_pool_constructs_and_never_recycles(self):
        pool = PacketPool(enabled=False)
        first = pool.protocol(0, 1, Op.RREQ, 0x40)
        pool.release(first)
        assert len(pool) == 0
        second = pool.protocol(0, 1, Op.RREQ, 0x40)
        assert second is not first
        assert DISABLED_POOL.enabled is False

    def test_clone_does_not_alias_the_original(self):
        pool = PacketPool()
        original = pool.protocol(
            1, 2, Op.RDATA, 0x100, data=_block([1, 2, 3, 4]), requester=9
        )
        original.sent_at = 55
        original.crc = packet_crc(original)
        dup = pool.clone(original)
        assert dup is not original
        assert dup.data is not original.data
        assert dup.meta == original.meta and dup.meta is not original.meta
        assert dup.sent_at == 55 and dup.crc == original.crc
        # the original is consumed, scrubbed and reissued as something else;
        # the in-flight duplicate must be unaffected
        pool.release(original)
        reissued = pool.protocol(7, 8, Op.INV, 0x999)
        assert reissued is original
        assert dup.data.words == [1, 2, 3, 4]
        assert dup.opcode is Op.RDATA and dup.address == 0x100

    def test_use_after_release_is_detectable(self):
        pool = PacketPool()
        packet = pool.protocol(0, 1, Op.RREQ, 0x40)
        pool.release(packet)
        assert packet._free  # the flag the fabric/NIC asserts on in debug

    def test_allocation_stats(self):
        pool = PacketPool()
        a = pool.protocol(0, 1, Op.RREQ, 0x40)
        pool.release(a)
        pool.protocol(0, 1, Op.RREQ, 0x40)
        assert pool.allocated == 1
        assert pool.recycled == 1


class TestOpcodeComparisonAudit:
    """Interned opcodes: a str/Op mismatch would silently disable retry
    matching (``"ACKC" != Op.ACKC``), so string-built packets must intern
    and the retry/timeout modules must never compare against spellings."""

    def test_string_built_packets_intern(self):
        packet = Packet(0, 1, "ACKC", 0x40)
        assert packet.opcode is Op.ACKC

    def test_no_string_opcode_comparisons_in_retry_paths(self):
        import pathlib

        import repro.cache.controller as cache_mod
        import repro.coherence.controller as dir_mod

        spellings = "|".join(op._name_ for op in Op)
        import re

        pattern = re.compile(rf'opcode\s*[!=]=\s*["\']({spellings})["\']')
        for mod in (cache_mod, dir_mod):
            source = pathlib.Path(mod.__file__).read_text()
            assert not pattern.search(source), mod.__name__


def _run(protocol: str, *, pool: bool, **overrides) -> dict:
    config = AlewifeConfig(
        n_procs=8,
        protocol=protocol,
        pointers=2,
        ts=50,
        packet_pool=pool,
        **overrides,
    )
    stats = AlewifeMachine(config).run(HotSpotWorkload(rounds=3))
    record = stats.to_dict()
    del record["config"]  # differs only in the packet_pool flag
    return record


class TestPoolGoldenIdentity:
    @pytest.mark.parametrize("protocol", ["fullmap", "limited", "limitless"])
    def test_pool_on_off_bit_identical(self, protocol):
        assert _run(protocol, pool=True) == _run(protocol, pool=False)

    @pytest.mark.parametrize("protocol", ["fullmap", "limitless"])
    def test_pool_on_off_bit_identical_under_faults(self, protocol):
        faults = dict(
            fault_drop_rate=2e-3,
            fault_dup_rate=2e-3,
            fault_delay_rate=2e-3,
            fault_corrupt_rate=1e-3,
            seed=7,
        )
        assert _run(protocol, pool=True, **faults) == _run(
            protocol, pool=False, **faults
        )
