"""Contended fabric over the non-mesh topologies."""

from __future__ import annotations

import pytest

from repro.network.fabric import WormholeNetwork
from repro.network.packet import protocol_packet
from repro.network.topology import Crossbar, Omega, Torus2D


def deliver_all(sim, net, sends):
    arrivals = {}
    for dst in {d for _, d in sends}:
        net.attach(dst, lambda p, d=dst: arrivals.setdefault(d, []).append(sim.now))
    for src, dst in sends:
        sim.call_at(0, lambda s=src, d=dst: net.send(protocol_packet(s, d, "RREQ", 0)))
    sim.run()
    return arrivals


class TestOmegaFabric:
    def test_hotspot_serializes_final_stage(self, sim):
        """All-to-one traffic through an Omega network funnels into the
        destination's final-stage link: arrivals must spread out."""
        net = WormholeNetwork(sim, Omega(8))
        arrivals = deliver_all(sim, net, [(s, 7) for s in range(7)])
        times = sorted(arrivals[7])
        assert len(times) == 7
        assert times[-1] - times[0] > 10  # serialized, not simultaneous
        assert net.stats.contention_cycles > 0

    def test_disjoint_omega_routes_parallel(self, sim):
        net = WormholeNetwork(sim, Omega(8))
        # a permutation the Omega can route without conflicts: identity
        arrivals = deliver_all(sim, net, [(i, i ^ 1) for i in range(8)])
        spread = {t for times in arrivals.values() for t in times}
        assert len(spread) <= 2  # everyone lands together (no contention)


class TestTorusFabric:
    def test_wraparound_is_faster_than_mesh_path(self, sim):
        net = WormholeNetwork(sim, Torus2D(4, 4))
        arrivals = deliver_all(sim, net, [(0, 3)])
        # one wrap hop instead of three mesh hops
        assert arrivals[3][0] <= 8


class TestCrossbarFabric:
    def test_pairwise_links_never_contend(self, sim):
        net = WormholeNetwork(sim, Crossbar(6))
        sends = [(s, (s + 1) % 6) for s in range(6)]
        deliver_all(sim, net, sends)
        assert net.stats.contention_cycles == 0

    def test_same_pair_still_serializes(self, sim):
        net = WormholeNetwork(sim, Crossbar(6))
        deliver_all(sim, net, [(0, 1), (0, 1), (0, 1)])
        assert net.stats.contention_cycles > 0


class TestMachineOnTopologies:
    @pytest.mark.parametrize("topology", ["torus", "omega", "crossbar"])
    def test_weather_runs_and_audits(self, topology):
        from repro.machine import AlewifeConfig, run_experiment
        from repro.workloads import WeatherWorkload

        stats = run_experiment(
            AlewifeConfig(
                n_procs=16,
                protocol="limitless",
                pointers=2,
                topology=topology,
                cache_lines=512,
                segment_bytes=1 << 17,
                max_cycles=8_000_000,
            ),
            WeatherWorkload(iterations=2),
        )
        assert stats.cycles > 0

    def test_torus_beats_mesh_on_wrap_heavy_traffic(self):
        """Neighbour exchange across the 0/N-1 seam favours the torus."""
        from repro.machine import AlewifeConfig, run_experiment
        from repro.workloads import MultigridWorkload

        def run(topology):
            return run_experiment(
                AlewifeConfig(
                    n_procs=16,
                    protocol="fullmap",
                    topology=topology,
                    cache_lines=512,
                    segment_bytes=1 << 17,
                    max_cycles=8_000_000,
                ),
                MultigridWorkload(levels=(2,)),
            ).network.hops

        assert run("torus") <= run("mesh")
