"""Tests for interconnect topologies and routing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.network.topology import (
    Crossbar,
    Mesh2D,
    Omega,
    Torus2D,
    make_topology,
)


class TestMesh2D:
    def test_route_to_self_is_empty(self):
        mesh = Mesh2D(4, 4)
        assert mesh.route(5, 5) == []

    def test_manhattan_distance(self):
        mesh = Mesh2D(4, 4)
        # node 0 = (0,0), node 15 = (3,3)
        assert len(mesh.route(0, 15)) == 6

    def test_x_dimension_first(self):
        mesh = Mesh2D(4, 4)
        path = mesh.route(0, 5)  # (0,0) -> (1,1)
        directions = [d for _, d in path]
        assert directions == ["E", "S"]

    def test_square_for_exact_square(self):
        mesh = Mesh2D.square_for(64)
        assert mesh.geometry.width == 8
        assert mesh.geometry.height == 8

    def test_square_for_rectangle(self):
        mesh = Mesh2D.square_for(32)
        assert mesh.n_nodes == 32

    def test_route_rejects_bad_node(self):
        mesh = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            mesh.route(0, 4)

    def test_average_distance_small_mesh(self):
        mesh = Mesh2D(2, 2)
        # pairwise distances: 4 pairs at 1 hop, 2 at 2 hops, doubled = 12/12... compute
        assert mesh.average_distance() == pytest.approx(16 / 12)

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_route_ends_at_destination(self, src, dst):
        mesh = Mesh2D(4, 4)
        x, y = mesh.geometry.coords(src)
        for node, direction in mesh.route(src, dst):
            nx, ny = mesh.geometry.coords(node)
            assert (nx, ny) == (x, y)
            dx = {"E": 1, "W": -1}.get(direction, 0)
            dy = {"S": 1, "N": -1}.get(direction, 0)
            x, y = nx + dx, ny + dy
        assert mesh.geometry.node_at(x, y) == dst

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_deterministic_routing(self, src, dst):
        mesh = Mesh2D(4, 4)
        assert mesh.route(src, dst) == mesh.route(src, dst)


class TestTorus2D:
    def test_wraparound_shortens_path(self):
        torus = Torus2D(4, 4)
        mesh = Mesh2D(4, 4)
        # 0 -> 3 is 3 hops on a mesh, 1 hop on a torus ring
        assert len(mesh.route(0, 3)) == 3
        assert len(torus.route(0, 3)) == 1

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_never_longer_than_mesh(self, src, dst):
        torus = Torus2D(4, 4)
        mesh = Mesh2D(4, 4)
        assert len(torus.route(src, dst)) <= len(mesh.route(src, dst))


class TestOmega:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            Omega(12)

    def test_stage_count(self):
        omega = Omega(16)
        assert omega.stages == 4
        assert len(omega.route(3, 9)) == 4

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_final_exchange_lands_on_destination(self, src, dst):
        omega = Omega(16)
        path = omega.route(src, dst)
        # last link's switch-input equals the destination address
        _, _, final = path[-1]
        assert final == dst

    def test_distinct_destinations_distinct_final_links(self):
        omega = Omega(8)
        finals = {omega.route(0, d)[-1] for d in range(8)}
        assert len(finals) == 8


class TestCrossbar:
    def test_single_hop(self):
        xbar = Crossbar(8)
        assert len(xbar.route(1, 5)) == 1
        assert xbar.route(2, 2) == []

    def test_links_are_pairwise_unique(self):
        xbar = Crossbar(4)
        links = {xbar.route(s, d)[0] for s in range(4) for d in range(4) if s != d}
        assert len(links) == 12


class TestFactory:
    @pytest.mark.parametrize("kind", ["mesh", "torus", "omega", "crossbar"])
    def test_make_topology(self, kind):
        topo = make_topology(kind, 16)
        assert topo.n_nodes == 16

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_topology("hypercube", 16)
