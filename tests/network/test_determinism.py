"""Network ordering and run-to-run determinism.

Two contracts the experiment pipeline (and its result cache) depend on:

* identical runs produce identical simulated cycle counts *and* identical
  event counts — no hidden iteration-order or allocation dependence;
* both fabrics deliver per-(src, dst) FIFO even under contention, the
  property the coherence protocols assume of the Alewife mesh.
"""

from __future__ import annotations

import pytest

from repro import AlewifeConfig, run_experiment
from repro.machine import AlewifeMachine
from repro.network.fabric import IdealNetwork, WormholeNetwork
from repro.network.packet import Packet
from repro.network.topology import Mesh2D
from repro.sim.kernel import Simulator
from repro.workloads import HotSpotWorkload, WeatherWorkload


def small_config(**overrides):
    params = dict(
        n_procs=16,
        cache_lines=512,
        segment_bytes=1 << 18,
        max_cycles=5_000_000,
    )
    params.update(overrides)
    return AlewifeConfig(**params)


class TestRunToRunDeterminism:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(protocol="limitless", pointers=4, ts=50),
            dict(protocol="limited", pointers=2),
            dict(protocol="fullmap", topology="ideal"),
        ],
    )
    def test_identical_runs_identical_cycles_and_events(self, overrides):
        def one_run():
            machine = AlewifeMachine(small_config(**overrides))
            stats = machine.run(WeatherWorkload(iterations=3))
            return (
                stats.cycles,
                machine.sim.events_executed,
                stats.network.packets,
                stats.traps_taken,
            )

        assert one_run() == one_run()

    def test_contended_workload_deterministic(self):
        runs = [
            run_experiment(
                small_config(protocol="limited", pointers=1),
                HotSpotWorkload(rounds=3),
            ).cycles
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


def fifo_pairs(net, sim, n_nodes):
    """Blast interleaved packets at every pair and record arrival order."""
    arrived: dict[int, list[int]] = {node: [] for node in range(n_nodes)}
    for node in range(n_nodes):
        net.attach(node, lambda p, log=arrived: log[p.dst].append(p.meta["tag"]))
    tag = 0
    # Three waves so later sends contend with earlier in-flight traffic.
    for wave in range(3):
        for src in range(n_nodes):
            dst = (src + 1 + wave) % n_nodes
            net.send(Packet(src, 0, "RREQ", address=src * 16, meta={"tag": tag}))
            net.send(Packet(src, dst, "RREQ", address=src * 16, meta={"tag": tag + 1}))
            tag += 2
    sim.run()
    return arrived


class TestFifoDelivery:
    def test_wormhole_preserves_pair_fifo_under_contention(self):
        sim = Simulator()
        net = WormholeNetwork(sim, Mesh2D(4, 4))
        order: list[tuple[int, int, int]] = []
        for node in range(16):
            net.attach(node, lambda p: order.append((p.src, p.dst, p.meta["seq"])))
        seq = 0
        for wave in range(4):  # node 0 is a hot spot: heavy link contention
            for src in range(1, 16):
                net.send(Packet(src, 0, "RREQ", address=src * 16, meta={"seq": seq}))
                seq += 1
        sim.run()
        per_pair: dict[tuple[int, int], list[int]] = {}
        for src, dst, s in order:
            per_pair.setdefault((src, dst), []).append(s)
        assert sum(len(v) for v in per_pair.values()) == seq
        for pair, seqs in per_pair.items():
            assert seqs == sorted(seqs), f"pair {pair} reordered: {seqs}"

    def test_ideal_preserves_pair_fifo_under_contention(self):
        sim = Simulator()
        net = IdealNetwork(sim, 8, latency=8)
        arrived = fifo_pairs(net, sim, 8)
        total = sum(len(v) for v in arrived.values())
        assert total == 48
        # Reconstruct per-pair order from tags (tags increase per send).
        # Same-pair packets must arrive in tag order.
        seen: dict[tuple[int, int], int] = {}
        sim2 = Simulator()
        net2 = IdealNetwork(sim2, 8, latency=8)

        def check(p):
            key = (p.src, p.dst)
            assert seen.get(key, -1) < p.meta["tag"], f"pair {key} reordered"
            seen[key] = p.meta["tag"]

        for node in range(8):
            net2.attach(node, check)
        tag = 0
        for wave in range(3):
            for src in range(8):
                dst = (src + 1 + wave) % 8
                net2.send(Packet(src, 0, "RREQ", address=src * 16, meta={"tag": tag}))
                net2.send(
                    Packet(src, dst, "RREQ", address=src * 16, meta={"tag": tag + 1})
                )
                tag += 2
        sim2.run()
        assert seen  # the checker actually observed deliveries


class TestIdealHopAccounting:
    def test_local_traffic_records_zero_hops(self):
        """src==dst traffic never enters the network: hops must be 0,
        matching WormholeNetwork, so mean-hop stats compare cleanly."""
        sim = Simulator()
        net = IdealNetwork(sim, 4)
        got = []
        for node in range(4):
            net.attach(node, got.append)
        net.send(Packet(1, 1, "RREQ", address=16))
        sim.run()
        assert len(got) == 1
        assert net.stats.hops == 0

    def test_remote_traffic_records_one_hop(self):
        sim = Simulator()
        net = IdealNetwork(sim, 4)
        for node in range(4):
            net.attach(node, lambda p: None)
        net.send(Packet(0, 2, "RREQ", address=16))
        sim.run()
        assert net.stats.hops == 1
