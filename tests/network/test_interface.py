"""Tests for the IPI network interface."""

from __future__ import annotations

import pytest

from repro.network.fabric import IdealNetwork
from repro.network.interface import IpiQueueOverflow, NetworkInterface
from repro.network.packet import Op, interrupt_packet, protocol_packet


def make_pair(sim, capacity=4):
    net = IdealNetwork(sim, 2, latency=3)
    nic0 = NetworkInterface(sim, 0, net, ipi_capacity=capacity)
    nic1 = NetworkInterface(sim, 1, net, ipi_capacity=capacity)
    return net, nic0, nic1


class TestDispatch:
    def test_cache_to_memory_opcodes_reach_memory_handler(self, sim):
        _, nic0, nic1 = make_pair(sim)
        got = []
        nic1.set_memory_handler(got.append)
        nic1.set_cache_handler(lambda p: pytest.fail("wrong handler"))
        sim.call_at(0, lambda: nic0.send(protocol_packet(0, 1, "RREQ", 0)))
        sim.run()
        assert got and got[0].opcode is Op.RREQ

    def test_memory_to_cache_opcodes_reach_cache_handler(self, sim):
        _, nic0, nic1 = make_pair(sim)
        got = []
        nic1.set_cache_handler(got.append)
        nic1.set_memory_handler(lambda p: pytest.fail("wrong handler"))
        sim.call_at(0, lambda: nic0.send(protocol_packet(0, 1, "INV", 0)))
        sim.run()
        assert got and got[0].opcode is Op.INV

    def test_missing_handler_raises(self, sim):
        _, nic0, _nic1 = make_pair(sim)
        sim.call_at(0, lambda: nic0.send(protocol_packet(0, 1, "RREQ", 0)))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_counters(self, sim):
        _, nic0, nic1 = make_pair(sim)
        nic1.set_memory_handler(lambda p: None)
        sim.call_at(0, lambda: nic0.send(protocol_packet(0, 1, "RREQ", 0)))
        sim.run()
        assert nic0.packets_sent == 1
        assert nic1.packets_received == 1


class TestIpiQueue:
    def test_interrupt_packets_enter_ipi_queue(self, sim):
        _, nic0, nic1 = make_pair(sim)
        sim.call_at(0, lambda: nic0.send(interrupt_packet(0, 1, "IPI", n=1)))
        sim.run()
        assert nic1.ipi_pending() == 1
        assert nic1.ipi_head().opcode == "IPI"

    def test_trap_handler_fires_on_enqueue(self, sim):
        _, nic0, nic1 = make_pair(sim)
        fired = []
        nic1.set_trap_handler(lambda: fired.append(sim.now))
        sim.call_at(0, lambda: nic0.send(interrupt_packet(0, 1, "IPI")))
        sim.run()
        assert len(fired) == 1

    def test_divert_places_protocol_packet_in_queue(self, sim):
        _, _nic0, nic1 = make_pair(sim)
        pkt = protocol_packet(0, 1, "RREQ", 0x40)
        nic1.divert_to_ipi(pkt)
        assert nic1.ipi_pop() is pkt
        assert nic1.ipi_pending() == 0

    def test_pop_empty_raises(self, sim):
        _, _, nic1 = make_pair(sim)
        with pytest.raises(RuntimeError):
            nic1.ipi_pop()

    def test_fifo_order(self, sim):
        _, _, nic1 = make_pair(sim)
        for i in range(3):
            nic1.divert_to_ipi(protocol_packet(0, 1, "RREQ", i * 16))
        assert [nic1.ipi_pop().address for _ in range(3)] == [0, 16, 32]

    def test_capacity_overflow_raises(self, sim):
        _, _, nic1 = make_pair(sim, capacity=2)
        nic1.divert_to_ipi(protocol_packet(0, 1, "RREQ", 0))
        nic1.divert_to_ipi(protocol_packet(0, 1, "RREQ", 16))
        with pytest.raises(IpiQueueOverflow):
            nic1.divert_to_ipi(protocol_packet(0, 1, "RREQ", 32))

    def test_high_water_mark(self, sim):
        _, _, nic1 = make_pair(sim)
        nic1.divert_to_ipi(protocol_packet(0, 1, "RREQ", 0))
        nic1.divert_to_ipi(protocol_packet(0, 1, "RREQ", 16))
        nic1.ipi_pop()
        assert nic1.ipi_high_water == 2
        assert nic1.ipi_enqueued == 2
