"""Tests for barrier construction and the barrier program fragment."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.mem.address import AddressSpace, Allocator
from repro.proc import ops
from repro.sync.barrier import (
    barrier_wait,
    build_central_barrier,
    build_combining_tree,
)
from repro.workloads.base import Workload


class TestConstruction:
    def setup_method(self):
        self.space = AddressSpace(n_nodes=16, block_bytes=16, segment_bytes=1 << 16)
        self.alloc = Allocator(self.space)

    def test_central_barrier_single_node(self):
        spec = build_central_barrier(self.alloc, list(range(16)))
        assert spec.root.arity == 16
        assert all(spec.leaf_of(p) is spec.root for p in range(16))

    def test_combining_tree_structure(self):
        spec = build_combining_tree(self.alloc, list(range(16)), arity=4)
        nodes = list(spec.nodes())
        leaves = {id(spec.leaf_of(p)) for p in range(16)}
        assert len(leaves) == 4
        assert spec.root.arity == 4
        assert len(nodes) == 5  # 4 leaves + root

    def test_uneven_group_sizes(self):
        spec = build_combining_tree(self.alloc, list(range(10)), arity=4)
        total = sum(spec.leaf_of(p).arity for p in {id(spec.leaf_of(q)): q for q in range(10)}.values())
        # leaf arities are 4, 4, 2
        arities = sorted(
            {id(spec.leaf_of(p)): spec.leaf_of(p).arity for p in range(10)}.values()
        )
        assert arities == [2, 4, 4]
        assert total == 10

    def test_counter_and_flag_in_distinct_blocks(self):
        spec = build_combining_tree(self.alloc, list(range(8)), arity=2)
        for node in spec.nodes():
            assert self.space.block_of(node.counter_addr) != self.space.block_of(
                node.flag_addr
            )

    def test_tree_nodes_spread_over_homes(self):
        spec = build_combining_tree(self.alloc, list(range(16)), arity=4)
        homes = {self.space.home_of(n.counter_addr) for n in spec.nodes()}
        assert len(homes) > 1

    def test_single_participant_degenerates_to_central(self):
        spec = build_combining_tree(self.alloc, [3], arity=4)
        assert spec.root.arity == 1

    def test_needs_participants(self):
        with pytest.raises(ValueError):
            build_central_barrier(self.alloc, [])
        with pytest.raises(ValueError):
            build_combining_tree(self.alloc, list(range(4)), arity=1)


class _BarrierWorkload(Workload):
    """All processors cross the same barrier `rounds` times; a shared log
    records the order, which must never interleave across rounds."""

    name = "barrier-test"

    def __init__(self, rounds=3, arity=4, central=False):
        self.rounds = rounds
        self.arity = arity
        self.central = central
        self.log: list[tuple[int, int]] = []

    def build(self, machine):
        n = machine.config.n_procs
        if self.central:
            spec = build_central_barrier(machine.allocator, list(range(n)))
        else:
            spec = build_combining_tree(
                machine.allocator, list(range(n)), arity=self.arity
            )

        def program(p):
            for r in range(1, self.rounds + 1):
                self.log.append((r, p))
                yield from barrier_wait(spec, p, r)
                yield ops.think(5 + p)

        return {p: [program(p)] for p in range(n)}


def run_barrier_workload(n_procs=8, **kw):
    config = AlewifeConfig(
        n_procs=n_procs,
        protocol="fullmap",
        cache_lines=256,
        segment_bytes=1 << 16,
        max_cycles=3_000_000,
    )
    workload = _BarrierWorkload(**kw)
    AlewifeMachine(config).run(workload)
    return workload.log


class TestBarrierSemantics:
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_rounds_never_interleave_combining(self, arity):
        log = run_barrier_workload(n_procs=8, rounds=3, arity=arity)
        seen_rounds = [r for r, _ in log]
        # every processor logs round r before ANY processor logs r+1
        assert seen_rounds == sorted(seen_rounds)

    def test_rounds_never_interleave_central(self):
        log = run_barrier_workload(n_procs=8, rounds=3, central=True)
        seen_rounds = [r for r, _ in log]
        assert seen_rounds == sorted(seen_rounds)

    def test_every_processor_participates_every_round(self):
        log = run_barrier_workload(n_procs=8, rounds=3)
        for r in (1, 2, 3):
            assert sorted(p for rr, p in log if rr == r) == list(range(8))

    def test_odd_processor_count(self):
        log = run_barrier_workload(n_procs=7, rounds=2, arity=3)
        assert len(log) == 14
