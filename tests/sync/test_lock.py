"""Tests for spin locks over real shared memory."""

from __future__ import annotations

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.sync.lock import spin_lock_acquire, spin_lock_release
from repro.workloads.base import Workload


class _LockWorkload(Workload):
    """Every processor increments a non-atomic counter under the lock.

    If mutual exclusion holds, no increment is lost despite the counter
    being a plain load + store.
    """

    name = "lock-test"

    def __init__(self, increments=3):
        self.increments = increments
        self.critical_log: list[tuple[str, int]] = []

    def build(self, machine):
        n = machine.config.n_procs
        lock = machine.allocator.alloc_scalar("lock", home=0)
        counter = machine.allocator.alloc_scalar("counter", home=n - 1)
        self.counter_addr = counter.base

        def program(p):
            for _ in range(self.increments):
                yield from spin_lock_acquire(lock.base)
                self.critical_log.append(("enter", p))
                value = yield ops.load(counter.base)
                yield ops.think(7)
                yield ops.store(counter.base, value + 1)
                self.critical_log.append(("exit", p))
                yield from spin_lock_release(lock.base)
                yield ops.think(5)

        return {p: [program(p)] for p in range(n)}


def run_lock_test(n_procs=6, increments=3, protocol="fullmap", **cfg_kw):
    config = AlewifeConfig(
        n_procs=n_procs,
        protocol=protocol,
        cache_lines=256,
        segment_bytes=1 << 16,
        max_cycles=5_000_000,
        **cfg_kw,
    )
    workload = _LockWorkload(increments=increments)
    machine = AlewifeMachine(config)
    machine.run(workload)
    final = machine.nodes[
        machine.space.home_of(workload.counter_addr)
    ].memory.peek_word(workload.counter_addr)
    # the final value may still live in a cache; read through any cache copy
    for node in machine.nodes:
        line = node.cache_array.lookup(machine.space.block_of(workload.counter_addr))
        if line is not None and line.state.name == "READ_WRITE":
            final = line.data.words[
                machine.space.word_in_block(workload.counter_addr)
            ]
    return workload, final


class TestMutualExclusion:
    def test_no_lost_increments(self):
        workload, final = run_lock_test(n_procs=6, increments=3)
        assert final == 18

    def test_critical_sections_never_overlap(self):
        workload, _ = run_lock_test(n_procs=4, increments=2)
        inside: int | None = None
        for event, proc in workload.critical_log:
            if event == "enter":
                assert inside is None, f"{proc} entered while {inside} inside"
                inside = proc
            else:
                assert inside == proc
                inside = None

    def test_works_under_limitless(self):
        _, final = run_lock_test(
            n_procs=4, increments=2, protocol="limitless", pointers=1, ts=30
        )
        assert final == 8

    def test_works_under_limited(self):
        _, final = run_lock_test(
            n_procs=4, increments=2, protocol="limited", pointers=1
        )
        assert final == 8
