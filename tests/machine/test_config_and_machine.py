"""Tests for machine configuration and assembly."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine, run_experiment
from repro.sim.kernel import SimulationError
from repro.workloads import HotSpotWorkload
from repro.workloads.base import Workload


class TestConfig:
    def test_defaults_model_alewife(self):
        config = AlewifeConfig()
        assert config.n_procs == 64
        assert config.switch_cycles == 11
        assert config.max_contexts == 4
        assert config.block_bytes == 16
        assert config.cache_lines * config.block_bytes == 64 * 1024

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            AlewifeConfig(protocol="msi")

    def test_limited_needs_pointers(self):
        with pytest.raises(ValueError):
            AlewifeConfig(protocol="limited", pointers=0)

    def test_with_returns_modified_copy(self):
        base = AlewifeConfig(n_procs=16)
        other = base.with_(ts=125)
        assert other.ts == 125
        assert other.n_procs == 16
        assert base.ts != 125 or base.ts == 50

    @pytest.mark.parametrize(
        "protocol,pointers,expected",
        [
            ("fullmap", 0, "Full-Map"),
            ("limited", 4, "Dir4NB"),
            ("limitless", 2, "LimitLESS2 (Ts=50)"),
            ("chained", 0, "Chained"),
        ],
    )
    def test_labels_use_paper_notation(self, protocol, pointers, expected):
        config = AlewifeConfig(protocol=protocol, pointers=pointers, ts=50)
        assert config.label() == expected


class TestMachineAssembly:
    def make(self, **overrides):
        defaults = dict(
            n_procs=4,
            cache_lines=128,
            segment_bytes=1 << 16,
            max_cycles=2_000_000,
        )
        defaults.update(overrides)
        return AlewifeMachine(AlewifeConfig(**defaults))

    def test_one_node_per_processor(self):
        machine = self.make()
        assert len(machine.nodes) == 4
        assert [n.node_id for n in machine.nodes] == [0, 1, 2, 3]

    def test_software_attached_only_for_software_protocols(self):
        assert self.make(protocol="fullmap").nodes[0].software is None
        assert self.make(protocol="limitless").nodes[0].software is not None
        assert self.make(protocol="trap_always").nodes[0].software is not None

    def test_approx_wires_trap_engine_to_processor(self):
        machine = self.make(protocol="limitless_approx")
        node = machine.nodes[0]
        assert node.directory_controller.trap_engine is node.processor

    def test_limitless_traps_run_on_local_processor(self):
        machine = self.make(protocol="limitless")
        node = machine.nodes[2]
        assert node.software.engine is node.processor

    def test_empty_workload_rejected(self):
        class Empty(Workload):
            name = "empty"

            def build(self, machine):
                return {}

        with pytest.raises(SimulationError):
            self.make().run(Empty())

    def test_deadlock_reported_with_unfinished_processors(self):
        from repro.proc import ops

        class Stuck(Workload):
            name = "stuck"

            def build(self, machine):
                flag = machine.allocator.alloc_scalar("never", home=0)

                def spin(p):
                    while True:
                        value = yield ops.load(flag.base)
                        if value:
                            break
                        yield ops.think(10)

                return {p: [spin(p)] for p in range(machine.config.n_procs)}

        machine = self.make(max_cycles=5_000)
        with pytest.raises(SimulationError, match="unfinished"):
            machine.run(Stuck())


class TestStatsCollection:
    def test_summary_mentions_key_metrics(self):
        stats = run_experiment(
            AlewifeConfig(
                n_procs=4, cache_lines=128, segment_bytes=1 << 16,
                max_cycles=2_000_000,
            ),
            HotSpotWorkload(rounds=2),
        )
        text = stats.summary()
        assert "cycles" in text
        assert "Full-Map" in text or "LimitLESS" in text

    def test_cycles_is_slowest_processor(self):
        machine = AlewifeMachine(
            AlewifeConfig(
                n_procs=4, cache_lines=128, segment_bytes=1 << 16,
                max_cycles=2_000_000,
            )
        )
        stats = machine.run(HotSpotWorkload(rounds=2))
        assert stats.cycles == max(stats.per_proc_finish)

    def test_determinism_cycle_for_cycle(self):
        def once():
            return run_experiment(
                AlewifeConfig(
                    n_procs=8,
                    protocol="limitless",
                    pointers=2,
                    cache_lines=256,
                    segment_bytes=1 << 16,
                    seed=99,
                    max_cycles=4_000_000,
                ),
                HotSpotWorkload(rounds=3),
            )

        a, b = once(), once()
        assert a.cycles == b.cycles
        assert a.network.packets == b.network.packets
        assert a.traps_taken == b.traps_taken

    def test_mcycles_conversion(self):
        stats = run_experiment(
            AlewifeConfig(
                n_procs=2, cache_lines=128, segment_bytes=1 << 16,
                max_cycles=2_000_000,
            ),
            HotSpotWorkload(rounds=1),
        )
        assert stats.mcycles() == pytest.approx(stats.cycles / 1e6)
