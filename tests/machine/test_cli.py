"""Tests for the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.cli import WORKLOADS, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.protocol == "limitless"
        assert args.workload == "weather"
        assert args.procs == 64

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--protocol", "mesi"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "linpack"])

    def test_workload_factories_build(self):
        args = build_parser().parse_args(["--procs", "8", "--iterations", "2"])
        for name, factory in WORKLOADS.items():
            workload = factory(args)
            assert workload.describe()


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "limitless" in out
        assert "weather" in out

    def test_single_run(self, capsys):
        code = main(
            [
                "--workload", "hotspot",
                "--procs", "4",
                "--protocol", "fullmap",
                "--iterations", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Full-Map" in out
        assert "cycles" in out

    def test_compare_prints_chart(self, capsys):
        code = main(
            [
                "--workload", "hotspot",
                "--procs", "4",
                "--iterations", "2",
                "--pointers", "1",
                "--compare", "fullmap", "limited",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vs base" in out
        assert "#" in out  # the bar chart

    def test_compare_rejects_unknown(self, capsys):
        code = main(
            ["--workload", "hotspot", "--procs", "4", "--compare", "bogus"]
        )
        assert code == 2

    def test_verbose_prints_counters(self, capsys):
        code = main(
            [
                "--workload", "migratory",
                "--procs", "4",
                "--protocol", "fullmap",
                "--iterations", "2",
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "worker-set size" in out

    def test_weak_ordering_flag(self, capsys):
        code = main(
            [
                "--workload", "producer-consumer",
                "--procs", "4",
                "--protocol", "fullmap",
                "--iterations", "2",
                "--memory-model", "wo",
            ]
        )
        assert code == 0

    def test_topology_flag(self, capsys):
        code = main(
            [
                "--workload", "hotspot",
                "--procs", "8",
                "--protocol", "fullmap",
                "--iterations", "2",
                "--topology", "omega",
            ]
        )
        assert code == 0
