"""Tests for counters, histograms, and figure-style reports."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.stats.counters import Counters, Histogram
from repro.stats.report import bar_chart, format_table


class TestCounters:
    def test_unknown_reads_zero(self):
        assert Counters().get("nope") == 0

    def test_bump_and_merge(self):
        a, b = Counters(), Counters()
        a.bump("x")
        a.bump("x", 2)
        b.bump("x")
        b.bump("y", 5)
        a.merge(b)
        assert a.get("x") == 4
        assert a.get("y") == 5

    def test_as_dict(self):
        c = Counters()
        c.bump("k", 3)
        assert c.as_dict() == {"k": 3}


class TestHistogram:
    def test_mean_and_max(self):
        h = Histogram()
        h.add(2, weight=3)
        h.add(10)
        assert h.total() == 4
        assert h.mean() == (2 * 3 + 10) / 4
        assert h.max() == 10

    def test_empty(self):
        h = Histogram()
        assert h.mean() == 0.0
        assert h.max() == 0
        assert h.fraction_at_most(5) == 0.0

    def test_fraction_at_most(self):
        h = Histogram()
        for v in (1, 2, 3, 10):
            h.add(v)
        assert h.fraction_at_most(3) == 0.75

    @given(values=st.lists(st.integers(min_value=0, max_value=64), min_size=1))
    def test_cdf_monotone(self, values):
        h = Histogram()
        for v in values:
            h.add(v)
        fractions = [h.fraction_at_most(k) for k in range(65)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestReports:
    def test_format_table_aligns_columns(self):
        table = format_table(["a", "label"], [[1, "x"], [100, "longer"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_bar_chart_scales_to_largest(self):
        chart = bar_chart("Figure", [("small", 1.0), ("big", 2.0)], width=10)
        lines = chart.splitlines()
        small_bar = lines[1].count("#")
        big_bar = lines[2].count("#")
        assert big_bar == 10
        assert small_bar == 5

    def test_bar_chart_handles_empty(self):
        assert "no data" in bar_chart("Figure", [])

    def test_bar_chart_zero_values(self):
        chart = bar_chart("Figure", [("zero", 0.0)])
        assert "zero" in chart
