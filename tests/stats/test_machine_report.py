"""Tests for the full machine report."""

from __future__ import annotations

from repro.machine import AlewifeConfig, run_experiment
from repro.stats.counters import Histogram
from repro.stats.machine_report import histogram_lines, machine_report
from repro.workloads import WeatherWorkload


def run_once(protocol="limitless", **extras):
    return run_experiment(
        AlewifeConfig(
            n_procs=8,
            protocol=protocol,
            pointers=2,
            ts=40,
            cache_lines=256,
            segment_bytes=1 << 16,
            max_cycles=4_000_000,
            **extras,
        ),
        WeatherWorkload(iterations=2),
    )


class TestHistogramLines:
    def test_renders_bars(self):
        hist = Histogram()
        hist.add(2, weight=4)
        hist.add(8, weight=1)
        out = histogram_lines(hist, title="t", width=8)
        lines = out.splitlines()
        assert lines[0] == "t"
        assert lines[1].count("#") == 8
        assert lines[2].count("#") == 2

    def test_empty(self):
        assert "(empty)" in histogram_lines(Histogram(), title="t")


class TestMachineReport:
    def test_contains_all_sections(self):
        report = machine_report(run_once())
        for fragment in (
            "workload cycles",
            "hit rate",
            "invalidations sent",
            "read-overflow traps",
            "mean latency",
            "worker-set size",
        ):
            assert fragment in report, f"missing section: {fragment}"

    def test_reports_scheme_label(self):
        report = machine_report(run_once())
        assert "LimitLESS2" in report

    def test_limited_directory_eviction_row(self):
        report = machine_report(run_once(protocol="limited"))
        line = next(
            l for l in report.splitlines() if "pointer evictions" in l
        )
        assert not line.rstrip().endswith(" 0")

    def test_worker_set_histogram_nonempty_after_writes(self):
        stats = run_once(protocol="fullmap")
        assert stats.worker_sets.total() > 0
        assert "worker-set size" in machine_report(stats)

    def test_latency_histogram_collected(self):
        from repro.machine import AlewifeMachine

        machine = AlewifeMachine(
            AlewifeConfig(
                n_procs=4,
                cache_lines=128,
                segment_bytes=1 << 16,
                max_cycles=2_000_000,
            )
        )
        machine.run(WeatherWorkload(iterations=2))
        hist = Histogram()
        for node in machine.nodes:
            hist.counts.update(node.cache_controller.latency_hist.counts)
        assert hist.total() > 0
        assert hist.max() >= 8  # remote misses cross the bucket boundary
