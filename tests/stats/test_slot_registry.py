"""Slot-registry growth contract: shipped components never grow it.

The slot registry is process-global by design (same construction order
=> same ids in every shard worker), which makes monotonic growth a
leak for long-lived processes.  Two guarantees pin the fix:

* every shipped component interns its slot names in module-level
  constants, so building machines in a loop leaves the registry size
  unchanged after the first build;
* phases that intern dynamically generated names can bracket themselves
  with ``slot_registry_snapshot`` / ``restore_slot_registry`` and shed
  exactly their own entries.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.stats import counters as counters_module
from repro.stats.counters import (
    Counters,
    counter_slot,
    restore_slot_registry,
    slot_registry_snapshot,
)


class TestMachineBuildsDoNotLeak:
    @pytest.mark.parametrize("backend", ["reference", "soa"])
    def test_repeated_builds_leave_the_registry_size_fixed(self, backend):
        config = AlewifeConfig(
            n_procs=4, protocol="limitless", pointers=4, ts=50, backend=backend
        )
        AlewifeMachine(config)  # first build interns whatever is lazy
        size = slot_registry_snapshot()
        for _ in range(3):
            AlewifeMachine(config)
        assert slot_registry_snapshot() == size


class TestSnapshotRestore:
    def test_restore_sheds_exactly_the_bracketed_entries(self):
        base = counter_slot("test.registry.kept")
        mark = slot_registry_snapshot()
        dynamic = [counter_slot(f"test.registry.dyn.{i}") for i in range(5)]
        assert slot_registry_snapshot() == mark + 5
        restore_slot_registry(mark)
        assert slot_registry_snapshot() == mark
        # Pre-snapshot entries keep their ids; dropped names re-intern
        # from the truncation point, not past it.
        assert counter_slot("test.registry.kept") == base
        assert counter_slot("test.registry.dyn.0") == mark
        assert counter_slot("test.registry.dyn.0") != dynamic[1]
        restore_slot_registry(mark)

    def test_folded_counts_survive_a_restore(self):
        mark = slot_registry_snapshot()
        slot = counter_slot("test.registry.folded")
        bag = Counters()
        view = bag.slot_view()
        view[slot] += 7
        assert bag.get("test.registry.folded") == 7  # reading folds
        restore_slot_registry(mark)
        assert bag.get("test.registry.folded") == 7
        assert "test.registry.folded" not in counters_module._SLOT_IDS

    def test_restore_rejects_markers_outside_the_registry(self):
        with pytest.raises(ValueError):
            restore_slot_registry(-1)
        with pytest.raises(ValueError):
            restore_slot_registry(slot_registry_snapshot() + 1)
