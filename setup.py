"""Packaging entry point with the *optional* native-extension build.

The compiled backend (``repro.backend._native``) is strictly a
performance add-on: every install must succeed without a C toolchain,
and every feature must work (via the ``soa`` fallback) when the
extension is absent.  The build therefore treats any compile failure as
a warning, not an error — unless ``REPRO_NATIVE_REQUIRE=1`` is set, in
which case a failed build fails the install (the CI ``native-smoke``
job sets it so a silently-skipped extension can't masquerade as a
passing native run).

Build in place for development:

    python setup.py build_ext --inplace
"""

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


_REQUIRED = os.environ.get("REPRO_NATIVE_REQUIRE", "") == "1"


class OptionalBuildExt(build_ext):
    """build_ext that degrades compile failures to a warning."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._handle(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - toolchain-dependent
            self._handle(exc)

    def _handle(self, exc):
        if _REQUIRED:
            raise
        print(
            f"WARNING: building the optional repro.backend._native "
            f"extension failed ({exc}); the package will fall back to "
            f"the pure-Python 'soa' backend at runtime",
            file=sys.stderr,
        )


setup(
    ext_modules=[
        Extension(
            "repro.backend.native._native",
            sources=["src/repro/backend/native/_native.c"],
            optional=not _REQUIRED,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
