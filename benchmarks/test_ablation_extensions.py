"""Ablation: the §6 extensions in action.

* Update-mode coherence vs plain invalidation for a frequently-rewritten,
  widely-read variable: update mode spares the readers their re-fetch
  misses at the price of data-bearing pushes.
* The FIFO lock data type vs BUSY/backoff retry under lock contention.
"""

from __future__ import annotations

import pytest

from repro.extensions import make_fifo_block, make_update_block
from repro.machine import AlewifeMachine
from repro.proc import ops
from repro.workloads.base import Workload

from common import scheme_config


class _PublishSubscribe(Workload):
    """One writer republishes a value; all other processors poll it."""

    name = "pubsub"

    def __init__(self, rounds=6):
        self.rounds = rounds
        self.addr = None

    def build(self, machine):
        n = machine.config.n_procs
        var = machine.allocator.alloc_scalar("pub.var", home=0)
        self.addr = var.base

        def writer():
            for i in range(1, self.rounds + 1):
                yield ops.store(var.base, i)
                yield ops.think(80)

        def reader(p):
            # Poll faster than the writer republishes, so under an
            # invalidation protocol every republish costs each reader a miss.
            for _ in range(3 * self.rounds):
                yield ops.load(var.base)
                yield ops.think(25)

        programs = {0: [writer()]}
        for p in range(1, n):
            programs[p] = [reader(p)]
        return programs


def run_pubsub(update_mode: bool):
    config = scheme_config("LimitLESS4-Ts50")
    machine = AlewifeMachine(config)
    workload = _PublishSubscribe()
    programs = workload.build(machine)
    if update_mode:
        make_update_block(machine, workload.addr)
    for proc_id, gens in programs.items():
        for gen in gens:
            machine.nodes[proc_id].processor.add_thread(gen)
    for node in machine.nodes:
        node.start()
    machine.sim.run()
    assert all(n.processor.done for n in machine.nodes)
    read_misses = sum(
        n.counters.get("cache.misses.load") for n in machine.nodes
    )
    return machine, read_misses


class _LockContention(Workload):
    """Every processor acquires/releases one test-and-set lock."""

    name = "lockbench"

    def __init__(self):
        self.addr = None

    def build(self, machine):
        lock = machine.allocator.alloc_scalar("bench.lock", home=0)
        self.addr = lock.base

        def program(p):
            got = False
            while not got:
                old = yield ops.test_and_set(lock.base)
                got = old == 0
                if not got:
                    yield ops.think(15)
            yield ops.think(30)  # critical section
            yield ops.store(lock.base, 0)

        return {p: [program(p)] for p in range(machine.config.n_procs)}


def run_lock(fifo: bool, n_procs: int = 16):
    config = scheme_config("LimitLESS4-Ts50", n_procs=n_procs)
    machine = AlewifeMachine(config)
    workload = _LockContention()
    programs = workload.build(machine)
    if fifo:
        make_fifo_block(machine, workload.addr)
    for proc_id, gens in programs.items():
        for gen in gens:
            machine.nodes[proc_id].processor.add_thread(gen)
    for node in machine.nodes:
        node.start()
    machine.sim.run()
    assert all(n.processor.done for n in machine.nodes)
    busy = sum(n.counters.get("dir.busy_sent") for n in machine.nodes)
    return machine.sim.now, busy


def test_update_mode_eliminates_reader_invalidation_misses(benchmark):
    def compare():
        m_inv, invalidate_misses = run_pubsub(update_mode=False)
        m_upd, update_misses = run_pubsub(update_mode=True)
        inv_cycles = max(n.processor.finish_time for n in m_inv.nodes)
        upd_cycles = max(n.processor.finish_time for n in m_upd.nodes)
        return invalidate_misses, update_misses, inv_cycles, upd_cycles

    invalidate_misses, update_misses, inv_cycles, upd_cycles = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    # Update mode: each reader misses exactly once (its initial fetch) and
    # every republish lands in its cache; invalidation re-fetches pile up.
    # (Total cycles are workload-dependent — updates trade reader misses
    # for data-bearing push traffic, the classic update/invalidate trade —
    # so the assertion is on the miss counts, the quantity update-mode
    # objects exist to remove.)
    assert update_misses < invalidate_misses * 0.7, (
        f"update mode should spare re-fetches: {update_misses} vs "
        f"{invalidate_misses} read misses"
    )
    assert upd_cycles > 0 and inv_cycles > 0


def test_fifo_lock_suppresses_busy_retry_traffic(benchmark):
    def compare():
        base_cycles, base_busy = run_lock(fifo=False)
        fifo_cycles, fifo_busy = run_lock(fifo=True)
        return (base_cycles, base_busy), (fifo_cycles, fifo_busy)

    (base_cycles, base_busy), (fifo_cycles, fifo_busy) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert fifo_busy < base_busy, "FIFO buffering should replace BUSY bounces"


def test_fifo_lock_completes_under_heavy_contention(benchmark):
    cycles, _busy = benchmark.pedantic(
        run_lock, kwargs={"fifo": True, "n_procs": 32}, rounds=1, iterations=1
    )
    assert cycles > 0
