"""Machine-size scaling (§3.1's scalability argument).

"LimitLESS directories are scalable, because the memory overhead grows as
O(N), and the performance approaches that of a full-map directory as
system size increases."  The flip side: the limited directory's hot-spot
penalty *grows* with machine size, because the widely-read variable's
worker-set is the whole machine.

We sweep N on the Weather workload: the Dir4NB/full-map ratio must grow
with N while the LimitLESS4/full-map ratio stays bounded.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import WeatherWorkload

from common import FigureCollector, shape_check

SIZES = [16, 64, 144]
SCHEMES = {
    "Dir4NB": dict(protocol="limited", pointers=4),
    "LimitLESS4": dict(protocol="limitless", pointers=4, ts=50),
    "Full-Map": dict(protocol="fullmap"),
}

collector = FigureCollector("Scaling: Weather across machine sizes")


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_scaling_case(benchmark, scheme, n):
    config = AlewifeConfig(n_procs=n, **SCHEMES[scheme])
    stats = benchmark.pedantic(
        run_experiment,
        args=(config, WeatherWorkload(iterations=4)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cycles"] = stats.cycles
    collector.add(f"{scheme}@{n}", stats)
    assert stats.cycles > 0


def test_scaling_shape(benchmark):
    def check():
        if len(collector.rows) < len(SIZES) * len(SCHEMES):
            pytest.skip("runs did not all execute")
        limited_ratio = []
        limitless_ratio = []
        for n in SIZES:
            full = collector.cycles(f"Full-Map@{n}")
            limited_ratio.append(collector.cycles(f"Dir4NB@{n}") / full)
            limitless_ratio.append(collector.cycles(f"LimitLESS4@{n}") / full)
        # limited-directory thrashing worsens with machine size ...
        assert limited_ratio == sorted(limited_ratio)
        assert limited_ratio[-1] > 1.8
        # ... while LimitLESS stays within a bounded envelope of full-map.
        assert max(limitless_ratio) < 1.5
        print(collector.report())
        print("Dir4NB/Full-Map ratios:", [f"{r:.2f}" for r in limited_ratio])
        print("LimitLESS4/Full-Map:   ", [f"{r:.2f}" for r in limitless_ratio])

    shape_check(benchmark, check)
