#!/usr/bin/env python3
"""Honest sharded-vs-serial scaling study for large machines.

Sweeps machine sizes (``--procs 64,256``) against shard counts
(``--shards 1,2,4,8``) and drivers (in-process windowed stepping and the
forked shared-memory driver), asserting the determinism contract at every
point — identical cycles, traps, packets, and per-processor finish times
— and recording the driver-efficiency counters that explain the wall
clock: windows, handoffs, bytes exchanged, slab flushes, and simulated
cycles per synchronization window.

Honesty rules:

* The report records the host's schedulable CPU count
  (``os.process_cpu_count`` where available).  A speedup is *claimed*
  only for the forked driver on a host with at least K CPUs; anywhere
  else the wall-clock ratio is recorded as ``wall_ratio`` with a loud
  note — on a starved host the forked driver loses to serial by
  time-slicing, which is scheduling, not scaling.
* Equivalence is the oracle: any fingerprint mismatch fails the run.
* ``K=1`` goes through ``run_sharded``'s fast path (no window loop), so
  the artifact also witnesses that a single-shard request costs nothing.

The ``scenarios`` block feeds ``check_perf_regression.py``: cycles per
window from the *in-process* driver is a deterministic measure of
lookahead quality (fewer, wider windows = better), so CI can gate on it
without wall-clock noise.

Writes a ``BENCH_scaling.json`` artifact.

Run:  python benchmarks/bench_scaling.py [--procs 64,256] [--shards 1,2,4]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.machine import AlewifeConfig, run_experiment
from repro.sim.shard import run_sharded
from repro.workloads import MultigridWorkload, WeatherWorkload


def _cpus() -> int:
    return getattr(os, "process_cpu_count", os.cpu_count)() or 1


def _fingerprint(stats) -> tuple:
    return (
        stats.cycles,
        stats.traps_taken,
        stats.network.packets,
        stats.network.total_latency,
        tuple(stats.per_proc_finish),
        tuple(sorted(stats.counters.as_dict().items())),
    )


def _workloads(scale: int) -> dict:
    return {
        "weather": lambda: WeatherWorkload(iterations=6 * scale),
        "multigrid": lambda: MultigridWorkload(levels=(2, 2, 2) * scale),
    }


def _run(config, make_workload, repeats: int, **kwargs):
    best = None
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        stats = run_experiment(config, make_workload(), **kwargs)
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return stats, best


def _point(
    procs: int,
    k: int,
    driver: str,
    make_workload,
    repeats: int,
    serial_fp: tuple,
    serial_wall: float,
    cpus: int,
) -> dict:
    if k == 1:
        # The fast path: no plan, no window loop, one serial machine.
        config = AlewifeConfig(
            n_procs=procs, protocol="limitless", shards=1, fabric="staged"
        )
        start = time.perf_counter()
        stats = run_sharded(config, make_workload())
        wall = time.perf_counter() - start
    else:
        config = AlewifeConfig(n_procs=procs, protocol="limitless", shards=k)
        stats, wall = _run(
            config,
            make_workload,
            repeats,
            shard_workers=1 if driver == "inprocess" else None,
        )
    point = {
        "shards": k,
        "driver": "fast-path" if k == 1 else driver,
        "equivalent": _fingerprint(stats) == serial_fp,
        "seconds": round(wall, 3),
    }
    meta = stats.shard_meta or {}
    windows = meta.get("windows", 0)
    point.update(
        windows=windows,
        handoffs=meta.get("handoffs", 0),
        bytes=meta.get("bytes", 0),
        flushes=meta.get("flushes", 0),
        cycles_per_window=round(stats.cycles / windows, 4) if windows else None,
    )
    ratio = serial_wall / wall if wall else 0.0
    if k > 1 and driver == "forked" and cpus >= k:
        point["speedup"] = round(ratio, 2)
    else:
        # Never claim a speedup the host cannot have produced.
        point["speedup"] = None
        point["wall_ratio"] = round(ratio, 2)
        if k > 1:
            point["speedup_note"] = (
                f"not claimed: {cpus} CPU(s) for {k} shards via the "
                f"{driver} driver; the wall ratio reflects "
                "time-slicing/driver overhead, not parallel scaling"
            )
    return point


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--procs", default="64", help="comma-separated machine sizes"
    )
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts to benchmark against serial",
    )
    parser.add_argument(
        "--drivers",
        default="inprocess,forked",
        help="comma-separated drivers for K>1 (inprocess, forked)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=6,
        help="workload scale factor (iterations multiplier)",
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--out", default="BENCH_scaling.json")
    args = parser.parse_args()
    proc_counts = [int(x) for x in args.procs.split(",") if x]
    shard_counts = [int(x) for x in args.shards.split(",") if x]
    drivers = [d.strip() for d in args.drivers.split(",") if d.strip()]
    for d in drivers:
        if d not in ("inprocess", "forked"):
            parser.error(f"unknown driver {d!r}")

    cpus = _cpus()
    max_k = max(shard_counts)
    report = {
        "procs": proc_counts,
        "shards": shard_counts,
        "drivers": drivers,
        "scale": args.scale,
        "cpus": cpus,
        "honest_host": cpus >= max_k,
        "machines": [],
        "scenarios": {},
    }
    if not report["honest_host"]:
        report["host_note"] = (
            f"host exposes {cpus} CPU(s) < {max_k} shards: forked-driver "
            "speedups are not claimed in this artifact"
        )
        print(f"NOTE: {report['host_note']}")

    exit_code = 0
    for procs in proc_counts:
        machine = {"procs": procs, "workloads": {}}
        for name, make_workload in _workloads(args.scale).items():
            serial_config = AlewifeConfig(
                n_procs=procs, protocol="limitless", fabric="staged"
            )
            serial_stats, serial_wall = _run(
                serial_config, make_workload, args.repeats
            )
            serial_fp = _fingerprint(serial_stats)
            entry = {
                "cycles": serial_stats.cycles,
                "serial_seconds": round(serial_wall, 3),
                "points": [],
            }
            print(
                f"{name:10s} p={procs:<5d} serial      "
                f"{serial_stats.cycles:>9,} cycles   {serial_wall:6.2f}s"
            )
            for k in shard_counts:
                for driver in drivers if k > 1 else drivers[:1]:
                    point = _point(
                        procs, k, driver, make_workload, args.repeats,
                        serial_fp, serial_wall, cpus,
                    )
                    entry["points"].append(point)
                    if not point["equivalent"]:
                        print(
                            f"{name:10s} p={procs} K={k} {point['driver']}: "
                            "EQUIVALENCE VIOLATED"
                        )
                        exit_code = 1
                        continue
                    shown = (
                        f"{point['speedup']:4.2f}x"
                        if point["speedup"] is not None
                        else f"[{point.get('wall_ratio', 0):4.2f}x wall]"
                    )
                    print(
                        f"{name:10s} p={procs:<5d} K={k} "
                        f"{point['driver']:<9s} {point['seconds']:6.2f}s "
                        f"{shown}  {point['windows']:,} windows, "
                        f"{point['handoffs']:,} handoffs, "
                        f"{point['bytes']:,} B, {point['flushes']:,} flushes"
                    )
                    if (
                        k > 1
                        and point["driver"] == "inprocess"
                        and point["cycles_per_window"]
                    ):
                        report["scenarios"][f"{name}@{procs}xK{k}"] = {
                            "cycles_per_window": point["cycles_per_window"]
                        }
            machine["workloads"][name] = entry
        report["machines"].append(machine)

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
