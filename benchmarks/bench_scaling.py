#!/usr/bin/env python3
"""Sharded-vs-serial scaling benchmark for one large machine.

Runs a 64-processor figure point (Weather and Multigrid under LimitLESS)
serially and partitioned into K shards, asserts the determinism contract
— identical cycles, traps, packets, and per-processor finish times — and
records the wall-clock ratio.  Equivalence is the oracle; speed is the
payoff, and it only materializes when the host actually has K free cores
(on a single-core container the forked driver *loses* to serial, which
the report records honestly).

The workloads are scaled up (more iterations/sweeps than the paper's
figure defaults) so each run is seconds long and per-window
synchronization overhead is amortized; simulated results remain exact.

Writes a ``BENCH_scaling.json`` artifact.

Run:  python benchmarks/bench_scaling.py [--procs N] [--shards 2,4] ...
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import MultigridWorkload, WeatherWorkload


def _fingerprint(stats) -> tuple:
    return (
        stats.cycles,
        stats.traps_taken,
        stats.network.packets,
        stats.network.total_latency,
        tuple(stats.per_proc_finish),
        tuple(sorted(stats.counters.as_dict().items())),
    )


def _workloads(scale: int) -> dict:
    return {
        "weather": lambda: WeatherWorkload(iterations=6 * scale),
        "multigrid": lambda: MultigridWorkload(levels=(2, 2, 2) * scale),
    }


def _run(config, make_workload, repeats: int, **kwargs):
    best = None
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        stats = run_experiment(config, make_workload(), **kwargs)
        wall = time.perf_counter() - start
        best = wall if best is None else min(best, wall)
    return stats, best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument(
        "--shards",
        default="2,4",
        help="comma-separated shard counts to benchmark against serial",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=6,
        help="workload scale factor (iterations multiplier)",
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--in-process",
        action="store_true",
        help="step shards in one interpreter (no fork; overhead baseline)",
    )
    parser.add_argument("--out", default="BENCH_scaling.json")
    args = parser.parse_args()
    shard_counts = [int(x) for x in args.shards.split(",") if x]

    report = {
        "procs": args.procs,
        "scale": args.scale,
        "cpus": os.cpu_count(),
        "driver": "in-process" if args.in_process else "forked",
        "workloads": {},
    }
    exit_code = 0
    for name, make_workload in _workloads(args.scale).items():
        serial_config = AlewifeConfig(
            n_procs=args.procs, protocol="limitless", fabric="staged"
        )
        serial_stats, serial_wall = _run(
            serial_config, make_workload, args.repeats
        )
        serial_fp = _fingerprint(serial_stats)
        entry = {
            "cycles": serial_stats.cycles,
            "serial_seconds": round(serial_wall, 3),
            "sharded": {},
        }
        print(
            f"{name:10s} serial   {serial_stats.cycles:>9,} cycles   "
            f"{serial_wall:6.2f}s"
        )
        for k in shard_counts:
            config = AlewifeConfig(
                n_procs=args.procs, protocol="limitless", shards=k
            )
            stats, wall = _run(
                config,
                make_workload,
                args.repeats,
                shard_workers=1 if args.in_process else None,
            )
            if _fingerprint(stats) != serial_fp:
                print(f"{name:10s} K={k}: EQUIVALENCE VIOLATED")
                exit_code = 1
                entry["sharded"][str(k)] = {"equivalent": False}
                continue
            speedup = serial_wall / wall if wall else 0.0
            entry["sharded"][str(k)] = {
                "equivalent": True,
                "seconds": round(wall, 3),
                "speedup": round(speedup, 2),
                "windows": stats.shard_meta["windows"],
                "handoffs": stats.shard_meta["handoffs"],
            }
            print(
                f"{name:10s} shards={k} {stats.cycles:>9,} cycles   "
                f"{wall:6.2f}s   {speedup:4.2f}x  "
                f"({stats.shard_meta['windows']} windows, "
                f"{stats.shard_meta['handoffs']} handoffs)"
            )
        report["workloads"][name] = entry

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
