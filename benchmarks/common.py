"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark module reproduces one table or figure from the paper's
evaluation (§5) on a scaled configuration: 64 simulated processors (the
paper's machine size) but shortened iteration counts so the whole suite
runs in minutes.  The *shape* of each figure — which scheme wins, by
roughly what factor — is asserted; absolute cycle counts are reported in
EXPERIMENTS.md.

Set ``REPRO_BENCH_PROCS`` to run the suite on a smaller machine.
"""

from __future__ import annotations

import os

from repro.machine import AlewifeConfig, MachineStats, run_experiment
from repro.stats.report import bar_chart, comparison_table
from repro.sweep import Job, ResultCache, WorkloadSpec, run_jobs

BENCH_PROCS = int(os.environ.get("REPRO_BENCH_PROCS", "64"))

#: Shared result cache: a scheme/workload point already simulated (by a
#: previous benchmark run or by ``repro sweep``) is reused as long as
#: ``src/repro`` is unchanged.  Set ``REPRO_BENCH_CACHE=0`` to bypass.
BENCH_CACHE = ResultCache(enabled=os.environ.get("REPRO_BENCH_CACHE", "1") != "0")

#: scheme rows in the order the paper's figures list them
SCHEMES = {
    "Dir1NB": dict(protocol="limited", pointers=1),
    "Dir2NB": dict(protocol="limited", pointers=2),
    "Dir4NB": dict(protocol="limited", pointers=4),
    "LimitLESS1-Ts50": dict(protocol="limitless", pointers=1, ts=50),
    "LimitLESS2-Ts50": dict(protocol="limitless", pointers=2, ts=50),
    "LimitLESS4-Ts25": dict(protocol="limitless", pointers=4, ts=25),
    "LimitLESS4-Ts50": dict(protocol="limitless", pointers=4, ts=50),
    "LimitLESS4-Ts100": dict(protocol="limitless", pointers=4, ts=100),
    "LimitLESS4-Ts150": dict(protocol="limitless", pointers=4, ts=150),
    "ApproxLL4-Ts50": dict(protocol="limitless_approx", pointers=4, ts=50),
    "Full-Map": dict(protocol="fullmap"),
    "Chained": dict(protocol="chained"),
}


def scheme_config(scheme: str, **overrides) -> AlewifeConfig:
    params = dict(SCHEMES[scheme])
    params.update(overrides)
    params.setdefault("n_procs", BENCH_PROCS)
    params.setdefault("max_cycles", 30_000_000)
    return AlewifeConfig(**params)


def run_scheme(scheme: str, workload, **overrides) -> MachineStats:
    """Run one scheme.  ``workload`` may be a live :class:`Workload` (run
    directly, uncacheable) or a :class:`WorkloadSpec` (routed through the
    sweep runner's content-addressed cache)."""
    config = scheme_config(scheme, **overrides)
    if isinstance(workload, WorkloadSpec):
        return run_jobs([Job(scheme, config, workload)], cache=BENCH_CACHE)[0].stats
    return run_experiment(config, workload)


def measure(benchmark, scheme: str, workload, **overrides) -> MachineStats:
    """Run one scheme under pytest-benchmark (single round: the metric of
    interest is simulated cycles, not wall-clock jitter)."""
    stats = benchmark.pedantic(
        run_scheme,
        args=(scheme, workload),
        kwargs=overrides,
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["cycles"] = stats.cycles
    benchmark.extra_info["mcycles"] = round(stats.mcycles(), 4)
    benchmark.extra_info["traps"] = stats.traps_taken
    return stats


def shape_check(benchmark, check) -> None:
    """Run a figure-shape assertion under the benchmark fixture so it is
    included in ``--benchmark-only`` runs (the figure is only meaningful
    when its shape holds)."""
    benchmark.pedantic(check, rounds=1, iterations=1)


class FigureCollector:
    """Accumulates (label, stats) rows and prints a paper-style figure."""

    def __init__(self, title: str):
        self.title = title
        self.rows: list[tuple[str, MachineStats]] = []

    def add(self, label: str, stats: MachineStats) -> None:
        self.rows.append((label, stats))

    def cycles(self, label: str) -> int:
        for row_label, stats in self.rows:
            if row_label == label:
                return stats.cycles
        raise KeyError(label)

    def report(self) -> str:
        chart = bar_chart(
            self.title,
            [(label, stats.mcycles()) for label, stats in self.rows],
        )
        table = comparison_table([stats for _, stats in self.rows])
        return f"\n{chart}\n\n{table}\n"
