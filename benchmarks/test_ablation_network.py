"""Ablation: the network model behind the Weather results.

§5.2 notes that the hot-spot effect "was not evident in previous
evaluations of directory-based cache coherence, because the network model
did not account for hot-spot behavior".  We rerun Figure 8's key comparison
on an ideal (uncontended) network: the Dir4NB penalty must shrink
substantially, confirming that contention — not just message counts — is
what the paper's hot-spot is made of.
"""

from __future__ import annotations

import pytest

from repro.workloads import WeatherWorkload

from common import FigureCollector, measure, shape_check

collector = FigureCollector("Ablation: contended mesh vs ideal network (Weather)")

CASES = [
    ("Dir4NB-mesh", "Dir4NB", {}),
    ("FullMap-mesh", "Full-Map", {}),
    ("Dir4NB-ideal", "Dir4NB", {"topology": "ideal"}),
    ("FullMap-ideal", "Full-Map", {"topology": "ideal"}),
]


def workload():
    return WeatherWorkload(iterations=5)


@pytest.mark.parametrize("label,scheme,overrides", CASES, ids=[c[0] for c in CASES])
def test_network_case(benchmark, label, scheme, overrides):
    stats = measure(benchmark, scheme, workload(), **overrides)
    collector.add(label, stats)
    assert stats.cycles > 0


def test_contention_is_part_of_the_hotspot_story(benchmark):
    def check():
        if len(collector.rows) < len(CASES):
            pytest.skip("runs did not all execute")
        mesh_penalty = collector.cycles("Dir4NB-mesh") / collector.cycles(
            "FullMap-mesh"
        )
        ideal_penalty = collector.cycles("Dir4NB-ideal") / collector.cycles(
            "FullMap-ideal"
        )
        # The limited directory still pays for its evictions without
        # contention, but the penalty must be visibly smaller.
        assert ideal_penalty < mesh_penalty
        assert mesh_penalty > 1.5
        print(collector.report())
        print(
            f"Dir4NB/Full-Map penalty: {mesh_penalty:.2f}x on the mesh, "
            f"{ideal_penalty:.2f}x on an ideal network"
        )

    shape_check(benchmark, check)


def test_omega_network_also_exhibits_hotspot(benchmark):
    """ASIM modelled mesh and Omega interconnects; the effect is topology-
    independent as long as the fabric models contention."""
    stats = measure(benchmark, "Dir4NB", workload(), topology="omega")
    full = measure_cache.get("omega_full")
    if full is None:
        from common import run_scheme

        full = run_scheme("Full-Map", workload(), topology="omega")
        measure_cache["omega_full"] = full
    assert stats.cycles > 1.3 * full.cycles


measure_cache: dict = {}
