"""Figure 8: Weather, 64 processors, limited and full-map directories.

Paper result: with the unoptimized widely-read variable, limited
directories thrash — "when the worker-set of a single location in memory
is much larger than the size of a limited directory, the whole system may
suffer from hot-spot access" — so Dir1NB, Dir2NB and Dir4NB all run far
slower than Full-Map, with fewer pointers hurting more.  §5.2 also reports
that when the variable IS optimized (flagged read-only), a limited
directory performs "just as well" as full-map.
"""

from __future__ import annotations

import pytest

from repro.sweep import WorkloadSpec

from common import FigureCollector, measure, run_scheme, shape_check

SCHEMES = ["Dir1NB", "Dir2NB", "Dir4NB", "Full-Map"]

collector = FigureCollector(
    "Figure 8: Weather, 64 Processors, limited and full-map directories"
)


def workload(**kw):
    # A spec rather than a live workload: runs route through the sweep
    # runner's result cache (keyed on config + params + source tree).
    return WorkloadSpec("weather", {"iterations": 5, **kw})


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig08_scheme(benchmark, scheme):
    stats = measure(benchmark, scheme, workload())
    collector.add(scheme, stats)
    assert stats.cycles > 0


def test_fig08_shape_limited_directories_thrash(benchmark):
    def check():
        if len(collector.rows) < len(SCHEMES):
            pytest.skip("scheme runs did not all execute")
        full = collector.cycles("Full-Map")
        dir1, dir2, dir4 = (
            collector.cycles("Dir1NB"),
            collector.cycles("Dir2NB"),
            collector.cycles("Dir4NB"),
        )
        # All limited schemes pay a hot-spot penalty over full-map ...
        assert dir4 > 1.5 * full, "Dir4NB should thrash on the hot variable"
        # ... and fewer pointers never helps.
        assert dir1 >= dir2 >= dir4
        print(collector.report())
    shape_check(benchmark, check)


def test_fig08_optimized_weather_restores_limited_directories(benchmark):
    """§5.2: flag the variable read-only and Dir4NB ~ Full-Map."""
    opt_dir4 = benchmark.pedantic(
        run_scheme,
        args=("Dir4NB", workload(optimized=True)),
        rounds=1,
        iterations=1,
    )
    opt_full = run_scheme("Full-Map", workload(optimized=True))
    ratio = opt_dir4.cycles / opt_full.cycles
    assert ratio < 1.15, f"optimized Dir4NB still {ratio:.2f}x of full-map"
