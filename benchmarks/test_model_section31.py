"""§3.1: the analytical latency model, validated against simulation.

The paper's model: LimitLESS average remote latency = Th + m * Ts.  Worked
example: Th = 35, Ts = 100, m = 3 % -> 10 % slower remote accesses than
full-map.  We (a) regenerate the model's numbers exactly, and (b) check the
simulator agrees with the model's *inputs*: the measured Th on a 64-node
machine is in the paper's ballpark, and the measured overflow fraction of
the optimized Weather run is a few percent.
"""

from __future__ import annotations

import pytest

from repro.model.analytical import (
    directory_overhead,
    limitless_remote_latency,
    slowdown_vs_fullmap,
)
from repro.stats.report import format_table
from repro.workloads import WeatherWorkload

from common import BENCH_PROCS, measure


def test_section31_worked_example(benchmark):
    def model_table():
        rows = []
        for m in (0.0, 0.01, 0.03, 0.05, 0.10, 1.0):
            for ts in (25, 50, 100, 150):
                rows.append(
                    (
                        m,
                        ts,
                        limitless_remote_latency(35, ts, m),
                        slowdown_vs_fullmap(35, ts, m),
                    )
                )
        return rows

    rows = benchmark.pedantic(model_table, rounds=1, iterations=1)
    claim = [r for r in rows if r[0] == 0.03 and r[1] == 100][0]
    assert claim[3] == pytest.approx(0.10, abs=0.015)
    print(
        "\n"
        + format_table(
            ["m", "Ts", "remote latency (cycles)", "slowdown vs full-map"],
            [(m, ts, f"{lat:.1f}", f"{sd:.1%}") for m, ts, lat, sd in rows[:12]],
        )
    )


def test_measured_th_matches_papers_ballpark(benchmark):
    """The paper measured Th ~ 35 cycles for Weather on 64 nodes."""
    stats = measure(benchmark, "Full-Map", WeatherWorkload(iterations=4))
    if BENCH_PROCS != 64:
        pytest.skip("Th calibration is specific to the 64-node geometry")
    assert 15 <= stats.mean_miss_latency <= 80, (
        f"measured Th={stats.mean_miss_latency:.1f} is out of the paper's ballpark"
    )


def test_measured_overflow_fraction_small_when_optimized(benchmark):
    """'97% of accesses to remote data locations hit in the limited
    directory' for the optimized Weather program (§3.1)."""
    stats = measure(
        benchmark,
        "LimitLESS4-Ts50",
        WeatherWorkload(iterations=4, optimized=True),
    )
    c = stats.counters
    remote = c.get("cache.remote_requests")
    overflows = c.get("limitless.overflow_diverts") + c.get(
        "dir.diverted"
    )
    m = overflows / remote if remote else 0.0
    assert m < 0.10, f"optimized Weather overflow fraction m={m:.3f}"


def test_directory_memory_overhead_table(benchmark):
    """§1's scaling argument: full-map O(N^2) vs LimitLESS O(N)."""

    def table():
        rows = []
        for n in (16, 64, 256, 1024):
            full = directory_overhead("fullmap", n)
            lless = directory_overhead("limitless", n)
            rows.append(
                (
                    n,
                    full.directory_bits,
                    lless.directory_bits,
                    f"{full.directory_bits / lless.directory_bits:.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    # the full-map:LimitLESS ratio must widen with machine size
    ratios = [full / lless for _, full, lless, _ in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 10
    print(
        "\n"
        + format_table(
            ["N", "full-map bits", "LimitLESS4 bits", "ratio"], rows
        )
    )
