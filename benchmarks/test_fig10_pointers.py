"""Figure 10: Weather, 64 processors, LimitLESS with 1, 2 and 4 pointers.

Paper result: "the performance of the LimitLESS protocol degrades
gracefully as the number of hardware pointers is reduced.  The one-pointer
LimitLESS protocol is especially bad, because some of Weather's variables
have a worker-set that consists of exactly two processors."  Our Weather
reconstruction gives each column's boundary value exactly two remote
readers for this reason.
"""

from __future__ import annotations

import pytest

from repro.sweep import WorkloadSpec

from common import FigureCollector, measure, shape_check

SCHEMES = [
    "Dir4NB",
    "LimitLESS1-Ts50",
    "LimitLESS2-Ts50",
    "LimitLESS4-Ts50",
    "Full-Map",
]

collector = FigureCollector(
    "Figure 10: Weather, 64 Processors, LimitLESS with 1, 2, 4 pointers"
)


def workload():
    # A spec rather than a live workload: runs route through the sweep
    # runner's result cache (keyed on config + params + source tree).
    return WorkloadSpec("weather", {"iterations": 5})


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig10_scheme(benchmark, scheme):
    stats = measure(benchmark, scheme, workload())
    collector.add(scheme, stats)
    assert stats.cycles > 0


def test_fig10_shape_graceful_degradation(benchmark):
    def check():
        if len(collector.rows) < len(SCHEMES):
            pytest.skip("scheme runs did not all execute")
        full = collector.cycles("Full-Map")
        ll1 = collector.cycles("LimitLESS1-Ts50")
        ll2 = collector.cycles("LimitLESS2-Ts50")
        ll4 = collector.cycles("LimitLESS4-Ts50")
        dir4 = collector.cycles("Dir4NB")
        # Graceful, monotone degradation as pointers shrink.
        assert full <= ll4 <= ll2 <= ll1
        # LimitLESS1 is especially bad: the worker-set-2 boundary variables
        # overflow its single pointer every sweep.
        assert ll1 > 1.15 * ll2
        # But even one pointer still beats a thrashing four-pointer Dir_iNB.
        assert ll1 < dir4
        print(collector.report())
    shape_check(benchmark, check)


def test_fig10_trap_counts_explain_degradation(benchmark):
    def check():
        """The mechanism behind the figure: trap counts rise as p falls."""
        if len(collector.rows) < len(SCHEMES):
            pytest.skip("scheme runs did not all execute")
        traps = {
            label: stats.traps_taken
            for label, stats in collector.rows
            if label.startswith("LimitLESS")
        }
        assert (
            traps["LimitLESS1-Ts50"]
            > traps["LimitLESS2-Ts50"]
            > traps["LimitLESS4-Ts50"]
        )

    shape_check(benchmark, check)
