"""Ablation: context switching as latency tolerance (§2).

Alewife's answer to unavoidable remote latency is SPARCLE's rapid context
switch: "the Alewife processors rapidly schedule another process in place
of the stalled process", at 11 cycles per switch.  We give each processor
a fixed budget of remote read misses split across 1, 2, or 4 hardware
contexts: execution time must fall as contexts are added, because the
switches overlap the network round trips.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import LatencyToleranceWorkload

from common import BENCH_PROCS, FigureCollector, shape_check

collector = FigureCollector("Ablation: hardware contexts vs remote latency")

THREADS = [1, 2, 4]


@pytest.mark.parametrize("threads", THREADS)
def test_contexts_case(benchmark, threads):
    config = AlewifeConfig(n_procs=BENCH_PROCS, protocol="fullmap")
    stats = benchmark.pedantic(
        run_experiment,
        args=(config, LatencyToleranceWorkload(threads_per_proc=threads)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cycles"] = stats.cycles
    collector.add(f"{threads}-context", stats)
    assert stats.cycles > 0


def test_multithreading_hides_latency(benchmark):
    def check():
        if len(collector.rows) < len(THREADS):
            pytest.skip("runs did not all execute")
        one = collector.cycles("1-context")
        two = collector.cycles("2-context")
        four = collector.cycles("4-context")
        assert four < two < one
        assert one / four > 1.4, (
            f"four contexts should hide most of the latency "
            f"({one} -> {four} cycles)"
        )
        # and the mechanism is real switching, not less work
        four_stats = dict(collector.rows)["4-context"]
        assert four_stats.counters.get("cpu.context_switches") > 0
        print(collector.report())

    shape_check(benchmark, check)


def test_switch_cost_matters(benchmark):
    """An instant context switch beats the 11-cycle SPARCLE switch, which
    beats a sluggish 100-cycle one — ordering check on the cost model."""

    def run_with(switch_cycles):
        config = AlewifeConfig(
            n_procs=BENCH_PROCS, protocol="fullmap", switch_cycles=switch_cycles
        )
        return run_experiment(
            config, LatencyToleranceWorkload(threads_per_proc=4)
        ).cycles

    def check():
        free = run_with(0)
        sparcle = run_with(11)
        slow = run_with(100)
        assert free <= sparcle < slow

    shape_check(benchmark, check)
