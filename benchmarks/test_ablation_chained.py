"""Ablation: chained-directory write latency (the §1 comparison).

"Chained directories are forced to transmit invalidations sequentially
through a linked-list structure, and thus incur high write latencies for
very large machines."  We sweep the worker-set size of a single variable
and compare the chained directory's execution time against LimitLESS and
full-map, which fan invalidations out in parallel.
"""

from __future__ import annotations

import pytest

from repro.workloads import SyntheticSharingWorkload

from common import BENCH_PROCS, FigureCollector, measure, shape_check

collector = FigureCollector(
    "Ablation: serial (chained) vs fan-out invalidation, widening worker-sets"
)

WORKER_SETS = [4, 16, min(48, max(4, BENCH_PROCS - 2))]
SCHEMES = ["Chained", "LimitLESS4-Ts50", "Full-Map"]


def workload(ws):
    return SyntheticSharingWorkload(
        worker_sets=[(ws, 1)], rounds=4, write_period=1, think_per_round=60
    )


@pytest.mark.parametrize("ws", WORKER_SETS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_chained_case(benchmark, scheme, ws):
    stats = measure(benchmark, scheme, workload(ws))
    collector.add(f"{scheme}-ws{ws}", stats)
    assert stats.cycles > 0


def test_chained_write_latency_grows_with_worker_set(benchmark):
    def check():
        if len(collector.rows) < len(WORKER_SETS) * len(SCHEMES):
            pytest.skip("runs did not all execute")
        big = WORKER_SETS[-1]
        # At wide sharing the chained walk is visibly slower than fan-out.
        chained = collector.cycles(f"Chained-ws{big}")
        fullmap = collector.cycles(f"Full-Map-ws{big}")
        assert chained > 1.1 * fullmap, "serial invalidation should cost more"
        # And the chained penalty grows with the worker-set size.
        penalties = [
            collector.cycles(f"Chained-ws{ws}") / collector.cycles(f"Full-Map-ws{ws}")
            for ws in WORKER_SETS
        ]
        assert penalties[-1] > penalties[0]
        print(collector.report())

    shape_check(benchmark, check)
