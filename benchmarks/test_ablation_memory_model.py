"""Ablation: sequential consistency vs weak ordering (§2).

Alewife enforces sequential consistency and tolerates latency with context
switching; the paper notes other systems use weak ordering, and that "the
LimitLESS directory scheme can also be used with a weakly-ordered memory
model".  We run the same workloads under both models and under both
full-map and LimitLESS: the protocol's behaviour must be unaffected
(coherence audits pass) while buffered stores absorb some write latency.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import MigratoryWorkload, ProducerConsumerWorkload, WeatherWorkload

from common import BENCH_PROCS, FigureCollector, shape_check

collector = FigureCollector("Ablation: sequential consistency vs weak ordering")

CASES = []
for model in ("sc", "wo"):
    for proto_label, proto in [("FullMap", "fullmap"), ("LimitLESS4", "limitless")]:
        for wl_label, wl in [
            ("weather", lambda: WeatherWorkload(iterations=5)),
            ("pc", lambda: ProducerConsumerWorkload(epochs=4, buffer_words=8)),
            ("migratory", lambda: MigratoryWorkload(rounds=2)),
        ]:
            CASES.append((f"{proto_label}/{wl_label}/{model}", proto, model, wl))


@pytest.mark.parametrize("label,proto,model,wl", CASES, ids=[c[0] for c in CASES])
def test_memory_model_case(benchmark, label, proto, model, wl):
    config = AlewifeConfig(
        n_procs=BENCH_PROCS,
        protocol=proto,
        pointers=4,
        ts=50,
        memory_model=model,
    )
    stats = benchmark.pedantic(
        run_experiment, args=(config, wl()), rounds=1, iterations=1
    )
    benchmark.extra_info["cycles"] = stats.cycles
    collector.add(label, stats)
    assert stats.cycles > 0


def test_weak_ordering_shapes(benchmark):
    def check():
        if len(collector.rows) < len(CASES):
            pytest.skip("runs did not all execute")
        # Weak ordering never deadlocks or corrupts (audits already ran);
        # it must not be dramatically slower, and buffered stores appear.
        for proto in ("FullMap", "LimitLESS4"):
            for wl in ("weather", "pc", "migratory"):
                sc = collector.cycles(f"{proto}/{wl}/sc")
                wo = collector.cycles(f"{proto}/{wl}/wo")
                assert wo < 1.2 * sc, f"{proto}/{wl}: weak ordering regressed"
        wo_stats = dict(collector.rows)["FullMap/pc/wo"]
        assert wo_stats.counters.get("cpu.wo_stores_buffered") > 0
        print(collector.report())

    shape_check(benchmark, check)
