"""Ablation: the paper's §5.1 simulation technique vs the real protocol.

The published figures were produced with an approximation — ASIM ran a
full-map protocol and stalled the memory controller and local processor for
Ts on every emulated pointer overflow.  We implemented both that technique
(``limitless_approx``) and the message-accurate LimitLESS protocol
(``limitless``).  Their agreement is evidence that the paper's evaluation
methodology was sound; their residual gap is the price of the protocol's
real interlocks (queued packets during TRANS_IN_PROGRESS).
"""

from __future__ import annotations

import pytest

from repro.workloads import MultigridWorkload, WeatherWorkload

from common import FigureCollector, measure, shape_check

collector = FigureCollector("Ablation: exact LimitLESS vs the §5.1 approximation")

CASES = [
    ("weather-exact", "LimitLESS4-Ts50", WeatherWorkload(iterations=5)),
    ("weather-approx", "ApproxLL4-Ts50", WeatherWorkload(iterations=5)),
    (
        "multigrid-exact",
        "LimitLESS4-Ts50",
        MultigridWorkload(levels=(2, 2), points_per_proc=48),
    ),
    (
        "multigrid-approx",
        "ApproxLL4-Ts50",
        MultigridWorkload(levels=(2, 2), points_per_proc=48),
    ),
]


@pytest.mark.parametrize("label,scheme,workload", CASES, ids=[c[0] for c in CASES])
def test_ablation_case(benchmark, label, scheme, workload):
    stats = measure(benchmark, scheme, workload)
    collector.add(label, stats)
    assert stats.cycles > 0


def test_approximation_agrees_with_exact_protocol(benchmark):
    def check():
        if len(collector.rows) < len(CASES):
            pytest.skip("ablation runs did not all execute")
        for app in ("weather", "multigrid"):
            exact = collector.cycles(f"{app}-exact")
            approx = collector.cycles(f"{app}-approx")
            ratio = approx / exact
            assert 0.8 < ratio < 1.25, (
                f"{app}: approximation off by {ratio:.2f}x — the paper's "
                "methodology would not have been sound in this regime"
            )
        print(collector.report())

    shape_check(benchmark, check)
