#!/usr/bin/env python3
"""Perf-regression gate: fail when a fresh benchmark run regresses.

Compares a freshly measured benchmark report against the committed
baseline (same JSON shape: ``{"scenarios": {name: {"events_per_sec"}}}``,
as written by ``microbench_kernel.py`` and ``bench_hotpath.py``) and exits
nonzero when any scenario's events/s falls more than ``--tolerance`` below
the baseline.  CI runs this after each microbench so a hot-path regression
fails the perf-smoke job instead of merely shipping a slower artifact.

The tolerance band absorbs runner-to-runner jitter; it can be widened for
noisy environments via ``--tolerance`` or ``REPRO_PERF_TOLERANCE``.

Run:  python benchmarks/check_perf_regression.py \
          --fresh BENCH_kernel.json --baseline benchmarks/BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_scenarios(path: str) -> dict[str, dict]:
    with open(path) as fh:
        report = json.load(fh)
    return report.get("scenarios", report)


def check(
    fresh: dict[str, dict], baseline: dict[str, dict], tolerance: float
) -> list[str]:
    """Regression messages (empty when the fresh run passes the gate)."""
    problems = []
    for name, base in sorted(baseline.items()):
        base_rate = base.get("events_per_sec")
        if not base_rate:
            continue
        if name not in fresh:
            problems.append(f"{name}: scenario missing from fresh run")
            continue
        rate = fresh[name].get("events_per_sec", 0)
        floor = base_rate * (1.0 - tolerance)
        verdict = "ok" if rate >= floor else "REGRESSION"
        print(
            f"{name:14s} fresh {rate:>12,.0f} ev/s   baseline {base_rate:>12,.0f}"
            f"   floor {floor:>12,.0f}   {verdict}"
        )
        if rate < floor:
            problems.append(
                f"{name}: {rate:,.0f} events/s is "
                f"{1 - rate / base_rate:.1%} below the committed baseline "
                f"{base_rate:,.0f} (tolerance {tolerance:.0%})"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-measured report")
    parser.add_argument(
        "--baseline", required=True, help="committed baseline report"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.20")),
        help="allowed fractional slowdown before failing (default: 0.20)",
    )
    args = parser.parse_args()

    problems = check(
        load_scenarios(args.fresh), load_scenarios(args.baseline), args.tolerance
    )
    if problems:
        print(f"\nperf gate FAILED ({len(problems)} regression(s)):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
