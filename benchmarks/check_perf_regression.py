#!/usr/bin/env python3
"""Perf-regression gate: fail when a fresh benchmark run regresses.

Compares a freshly measured benchmark report against the committed
baseline (same JSON shape: ``{"scenarios": {name: {metric: value}}}``,
as written by ``microbench_kernel.py``, ``bench_hotpath.py``, and
``bench_scaling.py``) and exits nonzero when any scenario's gated metric
— ``events_per_sec`` throughput or the shard driver's deterministic
``cycles_per_window`` — falls more than ``--tolerance`` below the
baseline.  CI runs this after each microbench so a hot-path regression
fails the perf-smoke job instead of merely shipping a slower artifact.

The tolerance band absorbs runner-to-runner jitter; it can be widened for
noisy environments via ``--tolerance`` or ``REPRO_PERF_TOLERANCE``.

Run:  python benchmarks/check_perf_regression.py \
          --fresh BENCH_kernel.json --baseline benchmarks/BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_scenarios(path: str) -> dict[str, dict]:
    with open(path) as fh:
        report = json.load(fh)
    return report.get("scenarios", report)


#: gated higher-is-better metrics and their display units.  events/s is
#: wall-clock throughput; cycles/window is the (deterministic) width of
#: the shard driver's synchronization windows — a lookahead regression
#: shrinks it long before it shows up in noisy wall-clock numbers.
_METRICS = (("events_per_sec", "ev/s"), ("cycles_per_window", "cyc/win"))


def check(
    fresh: dict[str, dict], baseline: dict[str, dict], tolerance: float
) -> list[str]:
    """Regression messages (empty when the fresh run passes the gate)."""
    problems = []
    for name, base in sorted(baseline.items()):
        gated = [(m, u) for m, u in _METRICS if base.get(m)]
        if not gated:
            continue
        if name not in fresh:
            problems.append(f"{name}: scenario missing from fresh run")
            continue
        for metric, unit in gated:
            base_rate = base[metric]
            rate = fresh[name].get(metric) or 0
            floor = base_rate * (1.0 - tolerance)
            verdict = "ok" if rate >= floor else "REGRESSION"
            # cycles/window sits near 1.0; keep decimals for small values.
            fmt = ",.0f" if base_rate >= 100 else ",.3f"
            print(
                f"{name:18s} fresh {rate:>12{fmt}} {unit:7s} "
                f"baseline {base_rate:>12{fmt}}   floor {floor:>12{fmt}}   "
                f"{verdict}"
            )
            if rate < floor:
                problems.append(
                    f"{name}: {rate:{fmt}} {unit} is "
                    f"{1 - rate / base_rate:.1%} below the committed baseline "
                    f"{base_rate:{fmt}} (tolerance {tolerance:.0%})"
                )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-measured report")
    parser.add_argument(
        "--baseline", required=True, help="committed baseline report"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.20")),
        help="allowed fractional slowdown before failing (default: 0.20)",
    )
    args = parser.parse_args()

    problems = check(
        load_scenarios(args.fresh), load_scenarios(args.baseline), args.tolerance
    )
    if problems:
        print(f"\nperf gate FAILED ({len(problems)} regression(s)):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
