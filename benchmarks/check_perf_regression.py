#!/usr/bin/env python3
"""Perf-regression gate: fail when a fresh benchmark run regresses.

Compares a freshly measured benchmark report against the committed
baseline (same JSON shape: ``{"scenarios": {name: {metric: value}}}``,
as written by ``microbench_kernel.py``, ``bench_hotpath.py``, and
``bench_scaling.py``) and exits nonzero when any scenario's gated metric
— ``events_per_sec`` throughput or the shard driver's deterministic
``cycles_per_window`` — falls more than ``--tolerance`` below the
baseline.  CI runs this after each microbench so a hot-path regression
fails the perf-smoke job instead of merely shipping a slower artifact.

The tolerance band absorbs runner-to-runner jitter; it can be widened for
noisy environments via ``--tolerance`` or ``REPRO_PERF_TOLERANCE``.

``--update`` turns the gate into a ratchet: after the (unchanged) check,
any scenario whose fresh gated metric beats the committed baseline has
its baseline raised to the fresh value, and the baseline file is
rewritten in place.  Baselines only move up — a run inside the tolerance
band never lowers them — so the committed numbers track the best honest
measurement instead of decaying with runner noise.  Scenarios new in the
fresh report are adopted wholesale.

``--allow-missing`` exempts baseline scenarios absent from the fresh
run (they are reported as skipped instead of failing).  The extension-
free perf-smoke job uses it for the hot-path gate: its fresh run never
measures the ``:native`` rows, which are gated strictly by the
``native-smoke`` job that builds the extension.

The committed baselines are duplicated at the repo root and under
``benchmarks/`` (the root copies are the PR-facing artifacts, the
``benchmarks/`` copies are what CI gates against).  The gate verifies
the two copies are byte-identical before checking anything, and
``--update`` rewrites both, so the pair can never drift silently.

Run:  python benchmarks/check_perf_regression.py \
          --fresh BENCH_kernel.json --baseline benchmarks/BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_scenarios(path: str) -> dict[str, dict]:
    with open(path) as fh:
        report = json.load(fh)
    return report.get("scenarios", report)


def mirror_path(baseline: str) -> str | None:
    """The other committed copy of ``baseline``, if the repo keeps one.

    BENCH_*.json baselines live both at the repo root and under
    ``benchmarks/``; given either copy this returns its counterpart, or
    ``None`` when the counterpart does not exist (uncommitted root
    artifacts from local runs are not mirrors).
    """
    directory, name = os.path.split(os.path.abspath(baseline))
    if os.path.basename(directory) == "benchmarks":
        candidate = os.path.join(os.path.dirname(directory), name)
    else:
        candidate = os.path.join(directory, "benchmarks", name)
    return candidate if os.path.exists(candidate) else None


def check_mirror(baseline: str) -> str | None:
    """Error message when the root/benchmarks copies of ``baseline`` differ."""
    mirror = mirror_path(baseline)
    if mirror is None:
        return None
    with open(baseline, "rb") as fh:
        ours = fh.read()
    with open(mirror, "rb") as fh:
        theirs = fh.read()
    if ours == theirs:
        return None
    return (
        f"baseline copies differ: {baseline} vs {mirror}; "
        f"sync with: cp {baseline} {mirror}"
    )


#: gated higher-is-better metrics and their display units.  events/s is
#: wall-clock throughput; cycles/window is the (deterministic) width of
#: the shard driver's synchronization windows — a lookahead regression
#: shrinks it long before it shows up in noisy wall-clock numbers.
_METRICS = (("events_per_sec", "ev/s"), ("cycles_per_window", "cyc/win"))


def check(
    fresh: dict[str, dict],
    baseline: dict[str, dict],
    tolerance: float,
    allow_missing: bool = False,
) -> list[str]:
    """Regression messages (empty when the fresh run passes the gate)."""
    problems = []
    for name, base in sorted(baseline.items()):
        gated = [(m, u) for m, u in _METRICS if base.get(m)]
        if not gated:
            continue
        if name not in fresh:
            if allow_missing:
                print(f"{name:18s} skipped (not measured in this run)")
            else:
                problems.append(f"{name}: scenario missing from fresh run")
            continue
        for metric, unit in gated:
            base_rate = base[metric]
            rate = fresh[name].get(metric) or 0
            floor = base_rate * (1.0 - tolerance)
            verdict = "ok" if rate >= floor else "REGRESSION"
            # cycles/window sits near 1.0; keep decimals for small values.
            fmt = ",.0f" if base_rate >= 100 else ",.3f"
            print(
                f"{name:18s} fresh {rate:>12{fmt}} {unit:7s} "
                f"baseline {base_rate:>12{fmt}}   floor {floor:>12{fmt}}   "
                f"{verdict}"
            )
            if rate < floor:
                problems.append(
                    f"{name}: {rate:{fmt}} {unit} is "
                    f"{1 - rate / base_rate:.1%} below the committed baseline "
                    f"{base_rate:{fmt}} (tolerance {tolerance:.0%})"
                )
    return problems


def ratchet(
    fresh: dict[str, dict], baseline: dict[str, dict]
) -> tuple[dict[str, dict], list[str]]:
    """Raise baseline gated metrics to any better fresh value.

    Returns the updated scenario mapping and a list of human-readable
    change descriptions (empty when nothing improved).  Non-gated keys in
    improved scenarios (event counts, wall times) are refreshed alongside
    so the committed record stays one coherent measurement.
    """
    updated = {name: dict(values) for name, values in baseline.items()}
    changes = []
    for name, values in sorted(fresh.items()):
        base = updated.get(name)
        if base is None:
            updated[name] = dict(values)
            changes.append(f"{name}: adopted new scenario")
            continue
        improved = [
            (metric, unit)
            for metric, unit in _METRICS
            if values.get(metric) and values[metric] > (base.get(metric) or 0)
        ]
        if not improved:
            continue
        gain = ", ".join(
            f"{metric} {base.get(metric) or 0:,.0f} -> {values[metric]:,.0f} {unit}"
            for metric, unit in improved
        )
        updated[name] = dict(values)
        changes.append(f"{name}: {gain}")
    return updated, changes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="just-measured report")
    parser.add_argument(
        "--baseline", required=True, help="committed baseline report"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.20")),
        help="allowed fractional slowdown before failing (default: 0.20)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="after the gate, ratchet the baseline file up to any better "
        "fresh numbers (baselines never move down)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="skip baseline scenarios absent from the fresh run instead of "
        "failing (for jobs that measure a backend subset)",
    )
    args = parser.parse_args()

    fresh = load_scenarios(args.fresh)
    baseline = load_scenarios(args.baseline)
    problems = check(fresh, baseline, args.tolerance, args.allow_missing)
    mirror_problem = check_mirror(args.baseline)
    if mirror_problem and not args.update:
        problems.append(mirror_problem)

    if args.update:
        updated, changes = ratchet(fresh, baseline)
        if changes or mirror_problem:
            with open(args.baseline) as fh:
                report = json.load(fh)
            if "scenarios" in report:
                report["scenarios"] = updated
            else:
                report = updated
            blob = json.dumps(report, indent=2) + "\n"
            targets = [args.baseline]
            mirror = mirror_path(args.baseline)
            if mirror is not None:
                targets.append(mirror)
            for path in targets:
                with open(path, "w") as fh:
                    fh.write(blob)
            print(f"\nratcheted {' and '.join(targets)}:")
            for change in changes:
                print(f"  {change}")
        else:
            print("\nratchet: no scenario beat the committed baseline")

    if problems:
        print(f"\nperf gate FAILED ({len(problems)} regression(s)):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
