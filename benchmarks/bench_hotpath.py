#!/usr/bin/env python3
"""Steady-state hot-path benchmark: protocol stack events per second.

Where ``microbench_kernel.py`` isolates the event kernel, this harness
measures the full protocol steady state — the code the zero-allocation
work targets:

* ``packetstorm`` — protocol-packet churn through a contended 8x8
  wormhole mesh where every delivery immediately constructs (or, with
  pooling, recycles) the next packet: the packet allocation + fabric
  send fast path;
* ``dirping``   — 16 caches hammering one home directory with
  read/write misses through real cache and memory controllers: the
  dispatch-table, counter, and message-helper fast path;
* ``hitstorm64`` — 64 processors in a pure cache-hit steady state: the
  fused SoA issue path against the reference heap at its deepest,
  where the batched ring's advantage is structural;
* ``weather64`` — the paper's 64-processor weather/limitless figure
  configuration (scaled iteration count): the end-to-end number the
  ISSUE's >=1.5x wall-clock target is pinned to.

Every scenario runs once per backend: the unsuffixed names are the
pure-Python reference, the ``:soa`` variants route the same work through
the structure-of-arrays backend (batched event kernel + fused hot
paths), and the ``:native`` variants run the compiled C kernels on top
of the same SoA storage.  The report's ``speedup_soa_vs_reference``,
``speedup_native_vs_soa``, and ``speedup_native_vs_reference`` sections
are the honest same-machine ratios; ``speedup`` (with ``--baseline``)
compares each scenario against the committed before-numbers, matching
suffixed rows to the baseline's unsuffixed scenario when the baseline
predates the backend split.  ``backend_notes`` records whether numpy was
available and whether the native extension actually loaded — a
``:native`` row measured on the soa fallback is useless as evidence, so
the note makes that state impossible to miss.

Writes a ``BENCH_hotpath.json`` artifact.  ``--baseline FILE`` embeds a
previously captured report under ``"before"`` and records per-scenario
speedups, so the artifact carries the pre/post evidence for the PR.

Run:  python benchmarks/bench_hotpath.py [--repeats R] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.network.fabric import WormholeNetwork
from repro.network.packet import Packet
from repro.network.topology import Mesh2D
from repro.sim.kernel import Simulator
from repro.workloads import WeatherWorkload


def _make_fabric(backend: str, topology):
    """(simulator, network) for a bare-fabric scenario on ``backend``."""
    if backend == "soa":
        from repro.backend.batchsim import BatchSimulator
        from repro.backend.fastpath import SoaWormholeNetwork

        sim = BatchSimulator()
        return sim, SoaWormholeNetwork(sim, topology)
    if backend == "native":
        # Through the registry so an unbuilt extension degrades to the
        # soa components exactly as a real run would (and the fallback
        # is recorded in backend_notes by main()).
        from repro.backend import get_backend

        bundle = get_backend("native")
        sim = bundle.make_simulator()
        return sim, bundle.wormhole_class(sim, topology)
    sim = Simulator()
    return sim, WormholeNetwork(sim, topology)


def bench_packetstorm(
    events: int = 300_000, side: int = 8, backend: str = "reference"
) -> tuple[int, float]:
    """Protocol packets through a contended mesh; send-per-delivery."""
    sim, net = _make_fabric(backend, Mesh2D(side, side))
    try:  # packet pool + interned opcodes only after the zero-allocation PR
        from repro.backend import get_backend
        from repro.network.packet import Op, PacketPool

        # The native backend ships its own compiled pool; measuring it
        # here is the point (packetstorm is pool/handler-bound).
        pool_factory = get_backend(backend).make_pool or PacketPool
        pool = pool_factory(enabled=True)
        rreq = Op.RREQ  # what controller-generated traffic actually carries
    except ImportError:  # pragma: no cover - baseline capture path
        pool = None
        rreq = "RREQ"
    n = side * side
    remaining = [events]

    def make_handler(node: int):
        def handler(packet: Packet) -> None:
            address = packet.address
            if pool is not None:
                pool.release(packet)
            if remaining[0] > 0:
                remaining[0] -= 1
                dst = (node * 7 + sim.now) % n if node % 3 else 0
                if pool is not None:
                    net.send(pool.protocol(node, dst, rreq, address))
                else:
                    net.send(Packet(node, dst, rreq, address=address))

        return handler

    for node in range(n):
        net.attach(node, make_handler(node))
    for node in range(n):
        net.send(Packet(node, (node + 1) % n, rreq, address=node * 16))
    start = time.perf_counter()
    sim.run()
    return sim.events_executed, time.perf_counter() - start


def bench_dirping(
    rounds: int = 2_000, n_procs: int = 16, backend: str = "reference"
) -> tuple[int, float]:
    """Many caches ping one home block: controller dispatch steady state.

    Built as a real (single-node-homed) machine so the full stack runs:
    processor issue, cache controller, NIC, fabric, directory dispatch.
    """
    config = AlewifeConfig(
        n_procs=n_procs,
        protocol="fullmap",
        topology="mesh",
        max_cycles=200_000_000,
        backend=backend,
    )
    machine = AlewifeMachine(config)

    from repro.proc import ops
    from repro.workloads.base import Workload

    class PingWorkload(Workload):
        name = "dirping"

        def describe(self) -> str:
            return "dirping"

        def build(self, machine) -> dict:
            hot = machine.allocator.alloc_scalar("ping.hot", home=0)
            slots = [
                machine.allocator.alloc_scalar(f"ping.s{p}", home=0)
                for p in range(machine.config.n_procs)
            ]

            def program(p: int):
                mine = slots[p].base
                for _ in range(rounds):
                    yield ops.load(hot.base)
                    yield ops.store(mine, p)
                    yield ops.load(hot.base)

            return {p: [program(p)] for p in range(machine.config.n_procs)}

    start = time.perf_counter()
    machine.run(PingWorkload(), audit=False)
    return machine.sim.events_executed, time.perf_counter() - start


def bench_hitstorm64(
    rounds: int = 15_000, n_procs: int = 64, backend: str = "reference"
) -> tuple[int, float]:
    """64 procs in a cache-hit steady state: the fused-issue fast path.

    Every processor owns one exclusive line and loads it in a tight
    loop, so after the first store each op is a cache hit — the path
    :class:`~repro.backend.fastpath.SoaProcessor` fuses onto the SoA
    columns, completing through the scheduling ring instead of the heap.
    At 64 in-flight completions per cycle the reference kernel pays a
    log-depth heap sift per event while the ring cost stays flat, so
    this is where the batched backend's advantage is structural rather
    than incidental.  The scenario has no PR 5 row in the committed
    baseline; its ``speedup_soa_vs_reference`` ratio is the honest
    same-session comparison (the reference path here is PR 5's code plus
    shared micro-opts that only make that comparison conservative).
    """
    from repro.proc import ops
    from repro.workloads.base import Workload

    config = AlewifeConfig(
        n_procs=n_procs,
        protocol="fullmap",
        topology="mesh",
        max_cycles=200_000_000,
        backend=backend,
    )
    machine = AlewifeMachine(config)

    class HitWorkload(Workload):
        name = "hitstorm64"

        def describe(self) -> str:
            return "hitstorm64"

        def build(self, m) -> dict:
            mine = [
                m.allocator.alloc_scalar(f"hit.s{p}", home=p)
                for p in range(m.config.n_procs)
            ]

            def program(p: int):
                base = mine[p].base
                yield ops.store(base, p)  # take exclusive ownership once
                load = ops.load(base)
                for _ in range(rounds):
                    yield load

            return {p: [program(p)] for p in range(m.config.n_procs)}

    start = time.perf_counter()
    machine.run(HitWorkload(), audit=False)
    return machine.sim.events_executed, time.perf_counter() - start


def bench_weather64(
    iterations: int = 20, backend: str = "reference"
) -> tuple[int, float]:
    """The 64-proc weather/limitless figure configuration, end to end."""
    config = AlewifeConfig(
        n_procs=64,
        protocol="limitless",
        pointers=4,
        ts=50,
        max_cycles=200_000_000,
        backend=backend,
    )
    machine = AlewifeMachine(config)
    workload = WeatherWorkload(iterations=iterations)
    start = time.perf_counter()
    machine.run(workload, audit=False)
    return machine.sim.events_executed, time.perf_counter() - start


_BENCHES = {
    "packetstorm": bench_packetstorm,
    "dirping": bench_dirping,
    "hitstorm64": bench_hitstorm64,
    "weather64": bench_weather64,
}

#: scenario name -> (bench function, backend).  Reference scenarios keep
#: their historical unsuffixed names so old baselines still line up.
SCENARIOS = {
    (base if backend == "reference" else f"{base}:{backend}"): (fn, backend)
    for base, fn in _BENCHES.items()
    for backend in ("reference", "soa", "native")
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per scenario (best kept)"
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["reference", "soa"],
        choices=["reference", "soa", "native"],
        help="which backends to measure (default: reference + soa; add "
        "'native' when the compiled extension is built)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="earlier BENCH_hotpath.json to embed as the 'before' numbers",
    )
    parser.add_argument("--out", default="BENCH_hotpath.json")
    args = parser.parse_args()

    from repro.backend import HAS_NUMPY
    from repro.backend.native import load_status

    native_ok, native_reason = load_status()
    report: dict = {
        "repeats": args.repeats,
        "backend_notes": {
            "numpy_available": HAS_NUMPY,
            "native_extension": (
                "compiled kernels active"
                if native_ok
                else f"UNAVAILABLE ({native_reason}); any :native rows "
                "below measured the soa fallback"
            ),
            "note": (
                "the soa backend is stdlib-only; numpy only accelerates "
                "cold bulk scans, so these rates stand without it"
            ),
            "packetstorm": (
                "the soa row is recorded honestly below 2x: the scenario "
                "is dominated by packet-pool, handler, and stats work "
                "identical on the reference and soa backends, so soa can "
                "only reach ~1.3-1.4x here; the native backend compiles "
                "exactly that pool/send layer, which is why its row "
                "clears 2x over soa"
            ),
        },
        "scenarios": {},
    }
    for name, (fn, backend) in SCENARIOS.items():
        if backend not in args.backends:
            continue
        best_rate = 0.0
        best_wall = float("inf")
        executed = 0
        for _ in range(args.repeats):
            executed, wall = fn(backend=backend)
            best_wall = min(best_wall, wall)
            best_rate = max(best_rate, executed / wall)
        report["scenarios"][name] = {
            "backend": backend,
            "events_executed": executed,
            "events_per_sec": round(best_rate),
            "wall_seconds": round(best_wall, 4),
        }
        print(
            f"{name:16s} {executed:>10,} events   {best_rate:>12,.0f} events/sec"
            f"   {best_wall:8.3f}s"
        )

    # Same-machine, same-session backend ratios: the honest speedup claims.
    scenarios = report["scenarios"]
    for section, num_suffix, den_suffix in (
        ("speedup_soa_vs_reference", ":soa", ""),
        ("speedup_native_vs_soa", ":native", ":soa"),
        ("speedup_native_vs_reference", ":native", ""),
    ):
        ratios = {
            base: round(
                scenarios[base + num_suffix]["events_per_sec"]
                / scenarios[base + den_suffix]["events_per_sec"],
                3,
            )
            for base in _BENCHES
            if base + num_suffix in scenarios and base + den_suffix in scenarios
        }
        if ratios:
            report[section] = ratios
            label = section.removeprefix("speedup_").replace("_vs_", "/")
            for base, ratio in ratios.items():
                print(f"{base:16s} {label} {ratio:.2f}x (same machine)")

    if args.baseline:
        with open(args.baseline) as fh:
            before = json.load(fh)
        report["before"] = before.get("scenarios", before)
        report["speedup"] = {}
        for name, result in report["scenarios"].items():
            # a pre-split baseline has no ':soa' rows; fall back to its
            # unsuffixed (reference) scenario for the cross-PR comparison
            base_entry = report["before"].get(name) or report["before"].get(
                name.split(":")[0], {}
            )
            base = base_entry.get("events_per_sec")
            if base:
                speedup = result["events_per_sec"] / base
                report["speedup"][name] = round(speedup, 3)
                print(f"{name:16s} speedup {speedup:.2f}x over baseline")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
