#!/usr/bin/env python3
"""Steady-state hot-path benchmark: protocol stack events per second.

Where ``microbench_kernel.py`` isolates the event kernel, this harness
measures the full protocol steady state — the code the zero-allocation
work targets:

* ``packetstorm`` — protocol-packet churn through a contended 8x8
  wormhole mesh where every delivery immediately constructs (or, with
  pooling, recycles) the next packet: the packet allocation + fabric
  send fast path;
* ``dirping``   — 16 caches hammering one home directory with
  read/write misses through real cache and memory controllers: the
  dispatch-table, counter, and message-helper fast path;
* ``weather64`` — the paper's 64-processor weather/limitless figure
  configuration (scaled iteration count): the end-to-end number the
  ISSUE's >=1.5x wall-clock target is pinned to.

Writes a ``BENCH_hotpath.json`` artifact.  ``--baseline FILE`` embeds a
previously captured report under ``"before"`` and records per-scenario
speedups, so the artifact carries the pre/post evidence for the PR.

Run:  python benchmarks/bench_hotpath.py [--repeats R] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.network.fabric import WormholeNetwork
from repro.network.packet import Packet
from repro.network.topology import Mesh2D
from repro.sim.kernel import Simulator
from repro.workloads import WeatherWorkload


def bench_packetstorm(events: int = 300_000, side: int = 8) -> tuple[int, float]:
    """Protocol packets through a contended mesh; send-per-delivery."""
    sim = Simulator()
    net = WormholeNetwork(sim, Mesh2D(side, side))
    try:  # packet pool + interned opcodes only after the zero-allocation PR
        from repro.network.packet import Op, PacketPool

        pool = PacketPool(enabled=True)
        rreq = Op.RREQ  # what controller-generated traffic actually carries
    except ImportError:  # pragma: no cover - baseline capture path
        pool = None
        rreq = "RREQ"
    n = side * side
    remaining = [events]

    def make_handler(node: int):
        def handler(packet: Packet) -> None:
            address = packet.address
            if pool is not None:
                pool.release(packet)
            if remaining[0] > 0:
                remaining[0] -= 1
                dst = (node * 7 + sim.now) % n if node % 3 else 0
                if pool is not None:
                    net.send(pool.protocol(node, dst, rreq, address))
                else:
                    net.send(Packet(node, dst, rreq, address=address))

        return handler

    for node in range(n):
        net.attach(node, make_handler(node))
    for node in range(n):
        net.send(Packet(node, (node + 1) % n, rreq, address=node * 16))
    start = time.perf_counter()
    sim.run()
    return sim.events_executed, time.perf_counter() - start


def bench_dirping(rounds: int = 2_000, n_procs: int = 16) -> tuple[int, float]:
    """Many caches ping one home block: controller dispatch steady state.

    Built as a real (single-node-homed) machine so the full stack runs:
    processor issue, cache controller, NIC, fabric, directory dispatch.
    """
    config = AlewifeConfig(
        n_procs=n_procs,
        protocol="fullmap",
        topology="mesh",
        max_cycles=200_000_000,
    )
    machine = AlewifeMachine(config)

    from repro.proc import ops
    from repro.workloads.base import Workload

    class PingWorkload(Workload):
        name = "dirping"

        def describe(self) -> str:
            return "dirping"

        def build(self, machine) -> dict:
            hot = machine.allocator.alloc_scalar("ping.hot", home=0)
            slots = [
                machine.allocator.alloc_scalar(f"ping.s{p}", home=0)
                for p in range(machine.config.n_procs)
            ]

            def program(p: int):
                mine = slots[p].base
                for _ in range(rounds):
                    yield ops.load(hot.base)
                    yield ops.store(mine, p)
                    yield ops.load(hot.base)

            return {p: [program(p)] for p in range(machine.config.n_procs)}

    start = time.perf_counter()
    machine.run(PingWorkload(), audit=False)
    return machine.sim.events_executed, time.perf_counter() - start


def bench_weather64(iterations: int = 20) -> tuple[int, float]:
    """The 64-proc weather/limitless figure configuration, end to end."""
    config = AlewifeConfig(
        n_procs=64,
        protocol="limitless",
        pointers=4,
        ts=50,
        max_cycles=200_000_000,
    )
    machine = AlewifeMachine(config)
    workload = WeatherWorkload(iterations=iterations)
    start = time.perf_counter()
    machine.run(workload, audit=False)
    return machine.sim.events_executed, time.perf_counter() - start


SCENARIOS = {
    "packetstorm": bench_packetstorm,
    "dirping": bench_dirping,
    "weather64": bench_weather64,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per scenario (best kept)"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="earlier BENCH_hotpath.json to embed as the 'before' numbers",
    )
    parser.add_argument("--out", default="BENCH_hotpath.json")
    args = parser.parse_args()

    report: dict = {"repeats": args.repeats, "scenarios": {}}
    for name, fn in SCENARIOS.items():
        best_rate = 0.0
        best_wall = float("inf")
        executed = 0
        for _ in range(args.repeats):
            executed, wall = fn()
            best_wall = min(best_wall, wall)
            best_rate = max(best_rate, executed / wall)
        report["scenarios"][name] = {
            "events_executed": executed,
            "events_per_sec": round(best_rate),
            "wall_seconds": round(best_wall, 4),
        }
        print(
            f"{name:12s} {executed:>10,} events   {best_rate:>12,.0f} events/sec"
            f"   {best_wall:8.3f}s"
        )

    if args.baseline:
        with open(args.baseline) as fh:
            before = json.load(fh)
        report["before"] = before.get("scenarios", before)
        report["speedup"] = {}
        for name, result in report["scenarios"].items():
            base = report["before"].get(name, {}).get("events_per_sec")
            if base:
                speedup = result["events_per_sec"] / base
                report["speedup"][name] = round(speedup, 3)
                print(f"{name:12s} speedup {speedup:.2f}x over baseline")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
