#!/usr/bin/env python3
"""Service-latency microbenchmark: warm-hit and cold-job service time.

Boots a real ``repro.serve`` server (asyncio HTTP front + process pool)
in this process, then measures the two service paths over the wire:

* ``serve_warm_hit`` — resubmission of an already-cached config.  This is
  the LimitLESS "common case fast" path: submit → cache hit → synchronous
  200, never touching the pool.  Reported as requests/s (the gate's
  ``events_per_sec``) plus p50/p95 milliseconds; the acceptance target is
  p50 under 100 ms.
* ``serve_cold_small`` — a cold 4-proc hotspot job through admission,
  the worker pool, and NDJSON completion: the end-to-end cost of a small
  simulation as a service call.

Writes a ``BENCH_serve.json`` artifact in the same ``{"scenarios": ...}``
shape the perf-regression gate consumes.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--out FILE]
          [--warm-requests N] [--cold-repeats N] [--assert-warm-under-ms MS]
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.serve import BackgroundServer, SweepService
from repro.sweep import ResultCache


def job_payload(rounds: int = 2) -> dict:
    return {
        "label": "bench-hotspot",
        "config": {"n_procs": 4, "protocol": "fullmap", "max_cycles": 2_000_000},
        "workload": {"name": "hotspot", "params": {"rounds": rounds}},
    }


def post_job(server, payload, timeout=120.0) -> tuple[int, dict]:
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        conn.request("POST", "/jobs", json.dumps(payload))
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_done(server, job_id, timeout=120.0) -> dict:
    """Follow the NDJSON stream to completion; returns the final record."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/stream")
        response = conn.getresponse()
        final = None
        for line in response:
            event = json.loads(line)
            if event.get("event") == "job" and event.get("state") in (
                "done",
                "failed",
            ):
                final = event["job"]
        return final
    finally:
        conn.close()


def bench_cold(server, repeats: int) -> list[float]:
    """Cold service times; each repeat uses a distinct config (fresh key)."""
    times = []
    for i in range(repeats):
        payload = job_payload(rounds=2 + i)  # unique key per repeat
        start = time.perf_counter()
        status, body = post_job(server, payload)
        assert status in (200, 202), f"cold submit failed: {status} {body}"
        final = wait_done(server, body["job"]["id"])
        times.append(time.perf_counter() - start)
        assert final and final["state"] == "done", f"cold job failed: {final}"
    return times


def bench_warm(server, requests: int) -> list[float]:
    """Warm-hit service times over the wire (submit of a cached config)."""
    payload = job_payload(rounds=2)
    times = []
    for _ in range(requests):
        start = time.perf_counter()
        status, body = post_job(server, payload)
        times.append(time.perf_counter() - start)
        assert status == 200, f"expected synchronous warm 200, got {status}"
        assert body["job"]["warm"], "warm submission missed the cache"
    return times


def percentile(values: list[float], p: float) -> float:
    ordered = sorted(values)
    rank = max(1, round(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--warm-requests", type=int, default=50)
    parser.add_argument("--cold-repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--assert-warm-under-ms",
        type=float,
        default=None,
        metavar="MS",
        help="exit nonzero unless warm p50 is under MS (the CI acceptance gate)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        service = SweepService(
            workers=args.workers,
            cache=ResultCache(Path(tmp) / "cache"),
            queue_depth=16,
        )
        with BackgroundServer(service) as server:
            print(f"bench_serve against {server.address}")
            cold = bench_cold(server, args.cold_repeats)
            warm = bench_warm(server, args.warm_requests)
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            conn.request("GET", "/metrics")
            metrics = json.loads(conn.getresponse().read())
            conn.close()

    warm_p50 = percentile(warm, 50)
    warm_p95 = percentile(warm, 95)
    cold_mean = statistics.mean(cold)
    report = {
        "benchmark": "serve",
        "warm_requests": args.warm_requests,
        "cold_repeats": args.cold_repeats,
        "scenarios": {
            "serve_warm_hit": {
                "events_per_sec": round(len(warm) / sum(warm), 2),
                "p50_ms": round(warm_p50 * 1e3, 3),
                "p95_ms": round(warm_p95 * 1e3, 3),
            },
            "serve_cold_small": {
                "events_per_sec": round(1.0 / cold_mean, 4),
                "mean_ms": round(cold_mean * 1e3, 3),
            },
        },
        "service_metrics": {
            "cache_hit_ratio": metrics["cache_hit_ratio"],
            "pool_invocations": metrics["pool_invocations"],
        },
    }
    print(
        f"warm hit: p50 {warm_p50 * 1e3:.2f} ms, p95 {warm_p95 * 1e3:.2f} ms, "
        f"{report['scenarios']['serve_warm_hit']['events_per_sec']:,.0f} req/s"
    )
    print(
        f"cold small job: mean {cold_mean * 1e3:.1f} ms "
        f"({report['scenarios']['serve_cold_small']['events_per_sec']:.2f} jobs/s)"
    )
    Path(args.out).write_text(json.dumps(report, indent=2))
    print(f"wrote {args.out}")

    if args.assert_warm_under_ms is not None:
        if warm_p50 * 1e3 >= args.assert_warm_under_ms:
            print(
                f"FAIL: warm-hit p50 {warm_p50 * 1e3:.2f} ms is not under "
                f"{args.assert_warm_under_ms:g} ms",
                file=sys.stderr,
            )
            return 1
        print(
            f"warm-hit p50 {warm_p50 * 1e3:.2f} ms "
            f"< {args.assert_warm_under_ms:g} ms: ok"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
