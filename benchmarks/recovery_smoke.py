#!/usr/bin/env python3
"""Crash-recovery smoke: the CI acceptance script for ``repro.recover``.

Real kills against real subprocesses, with bit-identical oracles:

1. **Run kill/resume** — boot the CLI with ``--checkpoint-every``, SIGKILL
   it after the first snapshot lands, resume from the latest snapshot, and
   require the final statistics to be *bit-identical* to an uninterrupted
   run of the same experiment.  Both the serial and the sharded (K=2)
   snapshot paths are exercised.
2. **Sweep kill/resume** — boot ``repro sweep``, SIGKILL it after the
   write-ahead manifest records its first completed point, rerun with
   ``--resume``, and require a clean exit with zero failed points and the
   previously completed work served from the cache.

Exits nonzero on the first violated expectation.

Run:  PYTHONPATH=src python benchmarks/recovery_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.machine import AlewifeConfig, run_experiment  # noqa: E402
from repro.recover import latest_snapshot, read_snapshot, resume_run  # noqa: E402
from repro.workloads import WeatherWorkload  # noqa: E402

PYTHON = sys.executable
ENV = {**os.environ, "PYTHONPATH": "src"}


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def wait_for(predicate, timeout: float, what: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out after {timeout}s waiting for {what}")


def kill_resume_run(shards: int) -> None:
    label = f"run kill/resume (shards={shards})"
    with tempfile.TemporaryDirectory(prefix="repro-recover-") as tmp:
        ckpt = os.path.join(tmp, "checkpoints")
        proc = subprocess.Popen(
            [
                PYTHON, "-m", "repro",
                "--workload", "weather", "--iterations", "8",
                "--procs", "64", "--protocol", "limitless",
                "--shards", str(shards),
                "--checkpoint-every", "1000", "--checkpoint-dir", ckpt,
            ],
            env=ENV,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            wait_for(
                lambda: latest_snapshot(ckpt) is not None
                or proc.poll() is not None,
                60.0,
                "the first snapshot",
            )
            check(
                proc.poll() is None,
                f"{label}: run finished before a snapshot could be taken "
                f"(rc={proc.returncode})",
            )
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            check(
                proc.returncode == -signal.SIGKILL,
                f"{label}: expected death by SIGKILL, got rc={proc.returncode}",
            )
        finally:
            if proc.poll() is None:
                proc.kill()

        snap_path = latest_snapshot(ckpt)
        check(snap_path is not None, f"{label}: no snapshot survived the kill")
        marker = read_snapshot(snap_path)
        config = AlewifeConfig(
            n_procs=64, protocol="limitless", pointers=4, ts=50, shards=shards
        )
        golden = run_experiment(
            config, WeatherWorkload(iterations=8), shard_workers=1
        )
        check(
            marker.cycle < golden.cycles,
            f"{label}: snapshot at cycle {marker.cycle} is not mid-run",
        )
        resumed = resume_run(snap_path, every=1000)
        check(
            resumed.to_dict() == golden.to_dict(),
            f"{label}: resumed stats diverge from the uninterrupted golden",
        )
        print(
            f"PASS {label}: killed at snapshot cycle {marker.cycle}, "
            f"resumed to {resumed.cycles} cycles, bit-identical to golden"
        )


def kill_resume_sweep() -> None:
    label = "sweep kill/resume"
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        manifest = os.path.join(cache_dir, "sweep-manifest.ndjson")
        out = os.path.join(tmp, "figures.json")
        argv = [
            PYTHON, "-m", "repro", "sweep",
            "--procs", "16", "--iters", "2", "--figures", "Figure 8",
            "--workers", "2", "--cache-dir", cache_dir, "--out", out,
        ]

        def done_records() -> int:
            try:
                with open(manifest) as fh:
                    return sum(
                        1 for line in fh if '"event": "done"' in line
                        or '"event":"done"' in line
                    )
            except OSError:
                return 0

        proc = subprocess.Popen(
            argv, env=ENV,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            wait_for(
                lambda: done_records() > 0 or proc.poll() is not None,
                120.0,
                "the first completed sweep point",
            )
            check(
                proc.poll() is None,
                f"{label}: sweep finished before it could be killed "
                f"(rc={proc.returncode})",
            )
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        completed_before = done_records()
        check(completed_before > 0, f"{label}: no point completed before kill")

        rc = subprocess.run(
            argv + ["--resume"], env=ENV,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        ).returncode
        check(rc == 0, f"{label}: resumed sweep exited {rc}")
        artifact = json.load(open(out))
        check(artifact["resumed"] is True, f"{label}: artifact not marked resumed")
        check(
            artifact["failed"] == 0 and artifact["quarantined"] == 0,
            f"{label}: {artifact['failed']} failed, "
            f"{artifact['quarantined']} quarantined",
        )
        rows = [
            row
            for fig in artifact["figures"]
            for row in fig["rows"]
        ]
        cached = sum(1 for row in rows if row["cached"])
        check(
            cached >= completed_before,
            f"{label}: only {cached} cache hits for {completed_before} "
            "points completed before the kill",
        )
        print(
            f"PASS {label}: {completed_before} point(s) survived the kill, "
            f"{cached}/{len(rows)} served from cache on resume"
        )


def main() -> int:
    started = time.monotonic()
    kill_resume_run(shards=1)
    kill_resume_run(shards=2)
    kill_resume_sweep()
    print(f"recovery smoke passed in {time.monotonic() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
