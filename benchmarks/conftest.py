"""Benchmark suite configuration."""

import sys
from pathlib import Path

# Allow `from common import ...` when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
