#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation at full scale.

This is the standalone harness behind EXPERIMENTS.md: 64 processors, the
full scheme list of Figures 7-10 plus the §5.2 optimized-Weather claim and
the approximation ablation.  It drives ``repro.sweep``: grid points fan
out over a worker pool, shared baselines simulate once, and previously
computed results come from the content-addressed cache (any edit under
``src/repro`` invalidates them).  Each run writes a ``BENCH_figures.json``
trajectory artifact recording per-point wall-clock and cache behaviour.

Run:  python benchmarks/run_figures.py [--procs N] [--iters N] [--workers N]
"""

from __future__ import annotations

import argparse
import os

from repro.sweep import ResultCache, default_cache_dir, run_figure_suite


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--procs",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_PROCS", "64")),
        help="simulated processors (default $REPRO_BENCH_PROCS or 64)",
    )
    parser.add_argument("--iters", type=int, default=8)
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default serial)"
    )
    parser.add_argument(
        "--figures", nargs="+", metavar="MATCH", help="only matching figures"
    )
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache (default $REPRO_SWEEP_CACHE or {default_cache_dir()})",
    )
    parser.add_argument("--out", default="BENCH_figures.json")
    args = parser.parse_args()

    cache = ResultCache(args.cache_dir, enabled=not args.no_cache)
    run_figure_suite(
        args.procs,
        args.iters,
        workers=args.workers,
        cache=cache,
        only=args.figures,
        out=args.out or None,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
