#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation at full scale.

This is the standalone harness behind EXPERIMENTS.md: 64 processors, the
full scheme list of Figures 7-10 plus the §5.2 optimized-Weather claim and
the approximation ablation.  Takes a few minutes.

Run:  python benchmarks/run_figures.py [--procs N] [--iters N]
"""

from __future__ import annotations

import argparse
import time

from repro import AlewifeConfig, run_experiment
from repro.stats.report import bar_chart, format_table
from repro.workloads import MultigridWorkload, WeatherWorkload


def run(scheme_label, protocol, workload, procs, **extras):
    config = AlewifeConfig(n_procs=procs, protocol=protocol, **extras)
    start = time.time()
    stats = run_experiment(config, workload)
    wall = time.time() - start
    print(
        f"  {scheme_label:24s} {stats.cycles:>12,} cycles  "
        f"traps={stats.traps_taken:<6d} evictions="
        f"{stats.counters.get('dir.pointer_evictions'):<6d} [{wall:.1f}s]"
    )
    return scheme_label, stats


def figure(title, rows):
    print("\n" + bar_chart(title, [(label, s.mcycles()) for label, s in rows]))
    baseline = dict(rows).get("Full-Map")
    if baseline:
        table = [
            (label, f"{s.cycles:,}", f"{s.cycles / baseline.cycles:.2f}x")
            for label, s in rows
        ]
        print("\n" + format_table(["scheme", "cycles", "vs Full-Map"], table))
    print()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument("--iters", type=int, default=8)
    args = parser.parse_args()
    procs, iters = args.procs, args.iters

    weather = lambda **kw: WeatherWorkload(iterations=iters, **kw)  # noqa: E731
    multigrid = MultigridWorkload(levels=(3, 3, 2), points_per_proc=48)

    print(f"=== Figure 7: Static Multigrid, {procs} processors ===")
    rows = [
        run("Dir4NB", "limited", multigrid, procs, pointers=4),
        run("LimitLESS4 Ts=100", "limitless", multigrid, procs, pointers=4, ts=100),
        run("LimitLESS4 Ts=50", "limitless", multigrid, procs, pointers=4, ts=50),
        run("Full-Map", "fullmap", multigrid, procs),
    ]
    figure("Figure 7: Static Multigrid", rows)

    print(f"=== Figure 8: Weather, {procs} processors, limited directories ===")
    rows = [
        run("Dir1NB", "limited", weather(), procs, pointers=1),
        run("Dir2NB", "limited", weather(), procs, pointers=2),
        run("Dir4NB", "limited", weather(), procs, pointers=4),
        run("Full-Map", "fullmap", weather(), procs),
    ]
    figure("Figure 8: Weather, limited and full-map", rows)

    print(f"=== §5.2: Weather with the variable flagged read-only ===")
    rows = [
        run("Dir4NB (optimized)", "limited", weather(optimized=True), procs, pointers=4),
        run("Full-Map (optimized)", "fullmap", weather(optimized=True), procs),
    ]
    figure("§5.2: optimized Weather", rows)

    print(f"=== Figure 9: Weather, LimitLESS emulation latency sweep ===")
    rows = [run("Dir4NB", "limited", weather(), procs, pointers=4)]
    for ts in (150, 100, 50, 25):
        rows.append(
            run(f"LimitLESS4 Ts={ts}", "limitless", weather(), procs, pointers=4, ts=ts)
        )
    rows.append(run("Full-Map", "fullmap", weather(), procs))
    figure("Figure 9: Weather, LimitLESS Ts sweep", rows)

    print(f"=== Figure 10: Weather, LimitLESS hardware pointer sweep ===")
    rows = [run("Dir4NB", "limited", weather(), procs, pointers=4)]
    for p in (1, 2, 4):
        rows.append(
            run(f"LimitLESS{p} Ts=50", "limitless", weather(), procs, pointers=p, ts=50)
        )
    rows.append(run("Full-Map", "fullmap", weather(), procs))
    figure("Figure 10: Weather, pointer sweep", rows)

    print("=== Ablation: §5.1 approximation vs message-accurate LimitLESS ===")
    rows = [
        run("LimitLESS4 exact", "limitless", weather(), procs, pointers=4, ts=50),
        run("LimitLESS4 approx", "limitless_approx", weather(), procs, pointers=4, ts=50),
        run("Full-Map", "fullmap", weather(), procs),
    ]
    figure("Ablation: exact vs approximation", rows)


if __name__ == "__main__":
    main()
