"""Figure 7: Static Multigrid, 64 processors.

Paper result: Dir4NB, LimitLESS4 (Ts = 50 and 100), and Full-Map "require
approximately the same time to complete the computation phase" — for
applications with small worker-sets, limited (and therefore LimitLESS)
directories perform almost as well as full-map.
"""

from __future__ import annotations

import pytest

from repro.sweep import WorkloadSpec

from common import FigureCollector, measure, shape_check

SCHEMES = ["Dir4NB", "LimitLESS4-Ts100", "LimitLESS4-Ts50", "Full-Map"]

collector = FigureCollector("Figure 7: Static Multigrid, 64 Processors")


def workload():
    # A spec rather than a live workload: runs route through the sweep
    # runner's result cache (keyed on config + params + source tree).
    return WorkloadSpec("multigrid", {"levels": (2, 2, 2), "points_per_proc": 48})


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig07_scheme(benchmark, scheme):
    stats = measure(benchmark, scheme, workload())
    collector.add(scheme, stats)
    assert stats.cycles > 0


def test_fig07_shape_all_schemes_comparable(benchmark):
    def check():
        """The figure's claim: every bar has approximately the same length."""
        if len(collector.rows) < len(SCHEMES):
            pytest.skip("scheme runs did not all execute")
        cycles = [stats.cycles for _, stats in collector.rows]
        spread = max(cycles) / min(cycles)
        assert spread < 1.35, f"multigrid schemes diverged by {spread:.2f}x"
        print(collector.report())

    shape_check(benchmark, check)
