"""Post-mortem trace methodology (§5.1): record once, replay everywhere.

The paper's Weather numbers come from a dynamic post-mortem trace scheduler
feeding the memory-system simulator.  We record the Weather reference
stream from one execution and replay the *identical* stream under each
directory scheme — the controlled-comparison methodology — and check the
Figure 8/9 ordering still holds with the workload variance removed.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.workloads import TraceReplayWorkload, WeatherWorkload, record_trace

from common import BENCH_PROCS, FigureCollector, shape_check

collector = FigureCollector("Post-mortem replay: one Weather trace, every scheme")

_cache: dict = {}


def recorded_trace():
    if "trace" not in _cache:
        config = AlewifeConfig(n_procs=BENCH_PROCS, protocol="fullmap")
        _cache["trace"], _ = record_trace(config, WeatherWorkload(iterations=4))
    return _cache["trace"]


SCHEMES = {
    "Dir2NB": dict(protocol="limited", pointers=2),
    "Dir4NB": dict(protocol="limited", pointers=4),
    "LimitLESS4": dict(protocol="limitless", pointers=4, ts=50),
    "Full-Map": dict(protocol="fullmap"),
}


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_replay_scheme(benchmark, scheme):
    trace = recorded_trace()

    def run():
        config = AlewifeConfig(n_procs=BENCH_PROCS, **SCHEMES[scheme])
        return AlewifeMachine(config).run(TraceReplayWorkload(trace))

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = stats.cycles
    collector.add(scheme, stats)
    assert stats.cycles > 0


def test_replay_preserves_figure8_ordering(benchmark):
    def check():
        if len(collector.rows) < len(SCHEMES):
            pytest.skip("runs did not all execute")
        full = collector.cycles("Full-Map")
        assert collector.cycles("Dir2NB") >= collector.cycles("Dir4NB") > 1.3 * full
        assert collector.cycles("LimitLESS4") < collector.cycles("Dir4NB")
        print(collector.report())

    shape_check(benchmark, check)


def test_replay_determinism(benchmark):
    trace = recorded_trace()

    def run_twice():
        results = []
        for _ in range(2):
            config = AlewifeConfig(n_procs=BENCH_PROCS, protocol="fullmap")
            results.append(
                AlewifeMachine(config).run(TraceReplayWorkload(trace)).cycles
            )
        return results

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert first == second
