#!/usr/bin/env python3
"""End-to-end service demo: the CI acceptance script for ``repro serve``.

Boots the real CLI (``python -m repro serve --port 0``) as a subprocess
and drives it over HTTP exactly as an external client would:

1. concurrent submission of identical + distinct jobs,
2. NDJSON progress streaming to completion (ETA records included),
3. warm resubmission served from the cache without spawning workers
   (asserted via the ``pool_invocations`` counter in ``/metrics``),
4. structured 413 rejection when the per-job point budget is exceeded,
5. ``/metrics`` reporting a nonzero cache-hit ratio,
6. graceful shutdown via ``POST /shutdown`` with clean subprocess exit.

Exits nonzero on the first violated expectation.

Run:  PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def request(host, port, method, path, body=None, timeout=120):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path, json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or "null")
    finally:
        conn.close()


def stream(host, port, job_id, timeout=120):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", f"/jobs/{job_id}/stream")
        response = conn.getresponse()
        check(response.status == 200, f"stream status {response.status}")
        return [json.loads(line) for line in response if line.strip()]
    finally:
        conn.close()


def weather_point(iterations: int, procs: int = 8) -> dict:
    return {
        "config": {
            "n_procs": procs,
            "protocol": "limitless",
            "pointers": 4,
            "ts": 50,
            "max_cycles": 20_000_000,
        },
        "workload": {"name": "weather", "params": {"iterations": iterations}},
    }


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--workers", "2",
                "--queue-depth", "8",
                "--max-points", "4",
                "--cache-dir", os.path.join(tmp, "cache"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            check(match is not None, f"no listen line, got: {line!r}")
            host, port = match.group(1), int(match.group(2))
            print(f"server up at {host}:{port}")

            status, body = request(host, port, "GET", "/healthz")
            check(status == 200 and body["status"] == "ok", f"healthz: {body}")

            # -- 1. concurrent submissions: 3x identical + 1 distinct ----
            results: list[tuple[int, dict]] = []
            payloads = [
                {"label": "weather-a", **weather_point(2)},
                {"label": "weather-b", **weather_point(2)},
                {"label": "weather-c", **weather_point(2)},
                {"label": "multigrid", "points": [
                    {
                        "config": {"n_procs": 8, "protocol": "fullmap",
                                   "max_cycles": 20_000_000},
                        "workload": {"name": "multigrid",
                                     "params": {"levels": [2, 2],
                                                "points_per_proc": 16}},
                    }
                ]},
            ]
            threads = [
                threading.Thread(
                    target=lambda p=p: results.append(
                        request(host, port, "POST", "/jobs", p)
                    )
                )
                for p in payloads
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            check(
                all(status in (200, 202) for status, _ in results),
                f"concurrent submits: {[s for s, _ in results]}",
            )
            print(f"submitted {len(results)} jobs concurrently")

            # -- 2. stream every job to completion -----------------------
            identical_cycles = set()
            for status, body in results:
                job = body["job"]
                events = stream(host, port, job["id"])
                final = events[-1]
                check(
                    final["event"] == "job" and final["state"] == "done",
                    f"job {job['id']} ended {final}",
                )
                point_events = [e for e in events if e["event"] == "point"]
                check(point_events, f"no point events for {job['id']}")
                if job["label"].startswith("weather-"):
                    identical_cycles.add(
                        final["job"]["results"][0]["cycles"]
                    )
            check(
                len(identical_cycles) == 1,
                f"identical jobs disagreed: {identical_cycles}",
            )
            print(f"all jobs streamed to done; identical jobs returned "
                  f"identical cycles ({identical_cycles.pop():,})")

            _, metrics = request(host, port, "GET", "/metrics")
            cold_invocations = metrics["pool_invocations"]
            # 3 identical weather jobs coalesced to one execution + 1 multigrid.
            check(
                cold_invocations == 2,
                f"expected 2 pool invocations, saw {cold_invocations}",
            )

            # -- 3. warm resubmission: cache, not workers ----------------
            start = time.perf_counter()
            status, body = request(host, port, "POST", "/jobs", payloads[0])
            warm_ms = (time.perf_counter() - start) * 1e3
            check(status == 200, f"warm submit status {status}")
            check(body["job"]["warm"] is True, f"not warm: {body['job']}")
            _, metrics = request(host, port, "GET", "/metrics")
            check(
                metrics["pool_invocations"] == cold_invocations,
                "warm resubmission touched the worker pool",
            )
            print(f"warm resubmission served from cache in {warm_ms:.1f} ms "
                  f"without touching the pool")

            # -- 4. structured over-budget rejection ---------------------
            status, body = request(
                host, port, "POST", "/jobs",
                {"points": [weather_point(i + 1) for i in range(5)]},
            )
            check(status == 413, f"expected 413, got {status}")
            check(
                body["error"]["code"] == "over_budget",
                f"rejection body: {body}",
            )
            print("over-budget job rejected with structured 413")

            # -- 5. metrics surface --------------------------------------
            _, metrics = request(host, port, "GET", "/metrics")
            check(
                metrics["cache_hit_ratio"] > 0,
                f"hit ratio {metrics['cache_hit_ratio']}",
            )
            check(
                metrics["latency"]["warm"]["p50_ms"] is not None,
                "no warm latency recorded",
            )
            print(
                f"metrics: hit ratio {metrics['cache_hit_ratio']:.2f}, "
                f"warm p50 {metrics['latency']['warm']['p50_ms']} ms, "
                f"jobs done {metrics['counters'].get('serve.jobs.done')}"
            )

            # -- 6. graceful shutdown ------------------------------------
            status, body = request(host, port, "POST", "/shutdown")
            check(status == 200, f"shutdown status {status}")
            code = proc.wait(timeout=60)
            check(code == 0, f"server exited {code}")
            print("graceful shutdown: clean exit")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
