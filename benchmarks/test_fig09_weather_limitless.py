"""Figure 9: Weather, 64 processors, LimitLESS with Ts = 25..150.

Paper result: "the LimitLESS protocol performs about as well as the
full-map directory protocol, even in a situation where a limited directory
protocol does not perform well", and its performance "is not strongly
dependent on the latency of the full-map directory emulation".  The paper
also observed LimitLESS with Ts = 25 slightly *beating* full-map — a
back-off anomaly caused by trap-slowed processors relieving network
contention.
"""

from __future__ import annotations

import pytest

from repro.sweep import WorkloadSpec

from common import FigureCollector, measure, shape_check

SCHEMES = [
    "Dir4NB",
    "LimitLESS4-Ts150",
    "LimitLESS4-Ts100",
    "LimitLESS4-Ts50",
    "LimitLESS4-Ts25",
    "Full-Map",
]

collector = FigureCollector(
    "Figure 9: Weather, 64 Processors, LimitLESS 25-150 cycle emulation"
)


def workload():
    # A spec rather than a live workload: runs route through the sweep
    # runner's result cache (keyed on config + params + source tree).
    return WorkloadSpec("weather", {"iterations": 5})


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig09_scheme(benchmark, scheme):
    stats = measure(benchmark, scheme, workload())
    collector.add(scheme, stats)
    assert stats.cycles > 0


def test_fig09_shape_limitless_tracks_fullmap(benchmark):
    def check():
        if len(collector.rows) < len(SCHEMES):
            pytest.skip("scheme runs did not all execute")
        full = collector.cycles("Full-Map")
        dir4 = collector.cycles("Dir4NB")
        ll = {ts: collector.cycles(f"LimitLESS4-Ts{ts}") for ts in (25, 50, 100, 150)}
        # Every LimitLESS point beats the limited directory ...
        for ts, cycles in ll.items():
            assert cycles < dir4, f"LimitLESS Ts={ts} should beat Dir4NB"
        # ... the moderate-Ts points are close to full-map ...
        assert ll[25] < 1.25 * full
        assert ll[50] < 1.40 * full
        # ... and the cost is monotone (weakly) in the emulation latency.
        assert ll[25] <= ll[50] <= ll[100] <= ll[150]
        print(collector.report())

    shape_check(benchmark, check)
