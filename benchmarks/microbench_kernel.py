#!/usr/bin/env python3
"""Events-per-second microbenchmark for the simulation kernel.

Two scenarios isolate the event-kernel fast path from protocol work:

* ``chains`` — interleaved self-rescheduling callbacks, the pure cost of
  schedule + heap sift + dispatch (every experiment's inner loop);
* ``packets`` — protocol-sized packets through a contended 8x8 wormhole
  mesh, adding the network fast path (memoized routes, argument-carrying
  delivery events, hoisted link dictionaries);
* ``samecycle`` — bursts of events scheduled *for the current cycle during
  the current cycle* (co-located component handoffs: cache -> directory ->
  network interface), the case served by the kernel's same-cycle FIFO fast
  lane instead of a heap push/pop round-trip.

Simulated results are unaffected by any of those optimizations (see
tests/network/test_determinism.py); this harness quantifies the
wall-clock side.  Writes a ``BENCH_kernel.json`` artifact.

Run:  python benchmarks/microbench_kernel.py [--events N] [--repeats R]
"""

from __future__ import annotations

import argparse
import json
import time

from repro.network.fabric import WormholeNetwork
from repro.network.packet import Packet
from repro.network.topology import Mesh2D
from repro.sim.kernel import Simulator


def bench_chains(events: int, chains: int = 64) -> tuple[int, float]:
    """Self-rescheduling callback chains with staggered periods."""
    sim = Simulator()
    per_chain = events // chains

    def make(period: int):
        remaining = [per_chain]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0]:
                sim.call_after(period, tick)

        return tick

    for i in range(chains):
        sim.call_at(i % 5, make(1 + i % 3))
    start = time.perf_counter()
    sim.run()
    return sim.events_executed, time.perf_counter() - start


def bench_packets(events: int, side: int = 8) -> tuple[int, float]:
    """Packet storm across a contended mesh: send on every delivery."""
    sim = Simulator()
    net = WormholeNetwork(sim, Mesh2D(side, side))
    n = side * side
    remaining = [events]

    def make_handler(node: int):
        def handler(packet: Packet) -> None:
            if remaining[0] > 0:
                remaining[0] -= 1
                # Deterministic all-to-all-ish pattern with hot node 0.
                dst = (node * 7 + packet.sent_at) % n if node % 3 else 0
                net.send(Packet(node, dst, "RREQ", address=packet.address))

        return handler

    for node in range(n):
        net.attach(node, make_handler(node))
    for node in range(n):
        net.send(Packet(node, (node + 1) % n, "RREQ", address=node * 16))
    start = time.perf_counter()
    sim.run()
    return sim.events_executed, time.perf_counter() - start


def bench_samecycle(events: int, burst: int = 8) -> tuple[int, float]:
    """Per-cycle bursts of same-cycle handoffs through the fast lane."""
    sim = Simulator()
    cycles = events // (burst + 1)
    remaining = [cycles]

    def hop(depth: int) -> None:
        if depth:
            sim.post(sim.now, hop, depth - 1)

    def tick() -> None:
        sim.post(sim.now, hop, burst - 1)
        remaining[0] -= 1
        if remaining[0]:
            sim.call_after(1, tick)

    sim.call_at(0, tick)
    start = time.perf_counter()
    sim.run()
    return sim.events_executed, time.perf_counter() - start


SCENARIOS = {
    "chains": bench_chains,
    "packets": bench_packets,
    "samecycle": bench_samecycle,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events", type=int, default=400_000, help="events per scenario run"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per scenario (best is kept)"
    )
    parser.add_argument("--out", default="BENCH_kernel.json")
    args = parser.parse_args()

    report = {"events": args.events, "repeats": args.repeats, "scenarios": {}}
    for name, fn in SCENARIOS.items():
        best_rate = 0.0
        executed = 0
        for _ in range(args.repeats):
            executed, wall = fn(args.events)
            best_rate = max(best_rate, executed / wall)
        report["scenarios"][name] = {
            "events_executed": executed,
            "events_per_sec": round(best_rate),
        }
        print(f"{name:8s} {executed:>9,} events   {best_rate:>12,.0f} events/sec")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
