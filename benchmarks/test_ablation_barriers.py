"""Ablation: barrier structure (why Weather used software combining trees).

The paper notes Weather "uses software combining trees to distribute its
barrier synchronization variables" — without them, the barrier itself is
a hot-spot: a central counter is a migratory object serialised across all
N processors, and the central release flag has a worker-set of N.  We
compare a central barrier against combining trees of arity 2 and 4 on an
otherwise-trivial iteration loop, for full-map and LimitLESS.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.proc import ops
from repro.sync.barrier import barrier_wait, build_central_barrier, build_combining_tree
from repro.workloads.base import Program, Workload

from common import BENCH_PROCS, FigureCollector, shape_check

collector = FigureCollector("Ablation: central vs combining-tree barriers")


@dataclass
class _BarrierOnly(Workload):
    """Processors think briefly and synchronize, repeatedly."""

    style: str = "tree4"
    rounds: int = 5
    name: str = "barrier-only"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        participants = list(range(n))
        if self.style == "central":
            spec = build_central_barrier(machine.allocator, participants)
        else:
            arity = int(self.style.removeprefix("tree"))
            spec = build_combining_tree(
                machine.allocator, participants, arity=arity
            )
        poll = machine.config.spin_poll_interval

        def program(p: int) -> Program:
            for r in range(1, self.rounds + 1):
                yield ops.think(40)
                yield from barrier_wait(spec, p, r, poll_interval=poll)

        return {p: [program(p)] for p in range(n)}


STYLES = ["central", "tree2", "tree4"]
PROTOCOLS = {"FullMap": dict(protocol="fullmap"),
             "LimitLESS4": dict(protocol="limitless", pointers=4, ts=50)}


@pytest.mark.parametrize("style", STYLES)
@pytest.mark.parametrize("proto", sorted(PROTOCOLS))
def test_barrier_case(benchmark, proto, style):
    config = AlewifeConfig(n_procs=BENCH_PROCS, **PROTOCOLS[proto])
    stats = benchmark.pedantic(
        run_experiment,
        args=(config, _BarrierOnly(style=style)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cycles"] = stats.cycles
    collector.add(f"{proto}/{style}", stats)
    assert stats.cycles > 0


def test_combining_trees_beat_central_barriers(benchmark):
    def check():
        if len(collector.rows) < len(STYLES) * len(PROTOCOLS):
            pytest.skip("runs did not all execute")
        for proto in PROTOCOLS:
            central = collector.cycles(f"{proto}/central")
            tree4 = collector.cycles(f"{proto}/tree4")
            assert tree4 < central, (
                f"{proto}: combining tree should beat the central barrier "
                f"({tree4} vs {central})"
            )
        # The central barrier's pain is the serialized fetch-and-add chain
        # plus the machine-wide flag worker-set.
        full_central = dict(collector.rows)["FullMap/central"]
        assert full_central.worker_sets.max() >= BENCH_PROCS - 1
        print(collector.report())

    shape_check(benchmark, check)
