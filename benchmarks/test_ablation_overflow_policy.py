"""Ablation: what to do when the pointer array overflows.

The design space behind the paper: on a read that overflows the hardware
pointers a directory can (a) evict a pointer — Dir_iNB, §5's limited
directory; (b) stop recording and broadcast invalidations on the next
write — Dir_iB from the cited taxonomy [8]; or (c) extend the directory
in software — LimitLESS.  Weather's write-once hot variable is the
pathological case for (a); a frequently-rewritten wide variable is the
pathological case for (b); LimitLESS pays a bounded, one-time software
cost in both.
"""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import HotSpotWorkload

from common import BENCH_PROCS, FigureCollector, shape_check

collector = FigureCollector("Ablation: overflow policy (hot-spot microbenchmark)")

POLICIES = {
    "Dir4NB": dict(protocol="limited", pointers=4),
    "Dir4B": dict(protocol="limited_broadcast", pointers=4),
    "LimitLESS4": dict(protocol="limitless", pointers=4, ts=50),
    "Full-Map": dict(protocol="fullmap"),
}

#: write_period=0 -> the Weather pattern (written once, read forever);
#: write_period=1 -> rewritten every round (broadcast's bad case)
VARIANTS = {"write-once": 0, "rewritten": 1}


def workload(write_period):
    # Arity-2 barriers keep the barrier flags inside four pointers, so the
    # hot variable is the only block that overflows — isolating the policy
    # under test.  (With wider trees the broadcast bit also arms on barrier
    # flags and every release becomes a machine-wide invalidation — real
    # Dir_iB behaviour, but it muddies the comparison.)
    return HotSpotWorkload(rounds=5, write_period=write_period, barrier_arity=2)


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_overflow_policy_case(benchmark, policy, variant):
    config = AlewifeConfig(n_procs=BENCH_PROCS, **POLICIES[policy])
    stats = benchmark.pedantic(
        run_experiment,
        args=(config, workload(VARIANTS[variant])),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cycles"] = stats.cycles
    collector.add(f"{policy}/{variant}", stats)
    assert stats.cycles > 0


def test_overflow_policy_shapes(benchmark):
    def check():
        if len(collector.rows) < len(POLICIES) * len(VARIANTS):
            pytest.skip("runs did not all execute")
        # (a) write-once data: eviction thrashes, broadcast and LimitLESS
        #     both approach full-map (no writes -> broadcast never fires).
        full = collector.cycles("Full-Map/write-once")
        assert collector.cycles("Dir4NB/write-once") > 1.25 * full
        assert collector.cycles("Dir4B/write-once") < 1.05 * full
        assert collector.cycles("LimitLESS4/write-once") < 1.2 * full
        # (b) rewritten data: broadcast pays machine-wide invalidations;
        #     it must lose its write-once advantage over eviction.
        ratio_once = collector.cycles("Dir4B/write-once") / collector.cycles(
            "Dir4NB/write-once"
        )
        ratio_rewrite = collector.cycles("Dir4B/rewritten") / collector.cycles(
            "Dir4NB/rewritten"
        )
        assert ratio_rewrite > ratio_once
        print(collector.report())

    shape_check(benchmark, check)
